// Deterministic chaos injection for the host stack.
//
// The paper's campaigns run for hours against hardware that misbehaves in
// benign, transient ways: PMBus transactions NACK, wires pick up glitches
// that PEC catches, the INA226 occasionally drops a conversation, an AXI
// dispatch times out, and very rarely a stack falls over at a voltage the
// fault model calls safe.  The chaos injector reproduces all of that on a
// seed-driven schedule so the robustness machinery (common/retry.hpp, the
// sweep crash watchdog, campaign checkpointing) can be tested against the
// exact fault sequence, every run.
//
// The headline invariant (pinned by tests/chaos_test.cpp): under any
// all-transient schedule, campaign figures are byte-identical to the
// fault-free run.  Two properties make that provable rather than lucky:
//
//  * Injection happens *before* device access.  The Bus transaction hook
//    runs before the address phase and the AXI hook before the traffic
//    generator is touched, so a failed attempt advances no device state
//    and no RNG stream; the retried attempt sees the world exactly as a
//    clean first attempt would.
//
//  * Injection sites are cooldown-limited.  After any injection a site
//    stays clean for `cooldown` subsequent events (default 4), so a
//    bounded retry budget always outlasts the worst-case fault burst: an
//    operation crossing the NACK, dropout, and wire sites can fail at
//    most three attempts in a row before every site is in cooldown.
//
// Persistent faults (`regulator_dies_after` / `monitor_dies_after`) are
// the opposite contract: the component NACKs forever after N
// transactions, retries exhaust, and the campaign degrades gracefully --
// structured errors in the summary, partial artifacts, no process death.
//
// Thread-safety: the Bus and vout paths are host-serial (sweep thread
// only), matching the board model.  The AXI hook runs concurrently from
// sweep workers, so its decision is a pure function of (run, stack, port,
// attempt) and its accounting uses atomics.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "board/vcu128.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace hbmvolt::chaos {

enum class FaultKind : unsigned {
  kPmbusNack = 0,    // transaction NACK (kNotFound) on any PMBus address
  kWireCorrupt = 1,  // single-bit frame flip; PEC turns it into kDataLoss
  kInaDropout = 2,   // power monitor unresponsive (kUnavailable)
  kAxiFail = 3,      // per-port traffic dispatch failure (kUnavailable)
  kSpuriousCrash = 4, // stack crash at a voltage the model calls safe
  // Fault-storm kinds, driven by storm_tick() from the resilient runtime
  // (src/runtime/) rather than by board hooks:
  kWeakCellBurst = 5, // sudden per-PC weak-cell burst (aging / VT shift)
  kBitRot = 6,        // stored-bit flip (the corruption patrol scrub fixes)
  kPcKill = 7,        // whole-pseudo-channel death; power cycles don't revive
  // Request-plane storm kind, drawn per (tenant, epoch) by the serving
  // plane (src/serve/plane.hpp) rather than per (PC, tick) by storm_tick:
  kTenantSurge = 8    // a tenant's offered load spikes for one epoch
};
inline constexpr unsigned kFaultKindCount = 9;

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

struct ChaosConfig {
  std::uint64_t seed = 0xC4A05;
  /// Per-event injection probabilities, one per transient fault kind.
  double pmbus_nack_rate = 0.0;
  double wire_corrupt_rate = 0.0;
  double ina_dropout_rate = 0.0;
  double axi_fail_rate = 0.0;
  double spurious_crash_rate = 0.0;
  /// Fault-storm rates, evaluated once per (PC, tick) by storm_tick().
  double weak_burst_rate = 0.0;
  double bit_rot_rate = 0.0;
  /// Whole-PC-kill storm rate: the ticked PC dies outright and stays dead
  /// across power cycles.  Only the cross-PC erasure stripe (or the
  /// journal fallback) survives this; keep it orders of magnitude below
  /// the transient rates.
  double pc_kill_rate = 0.0;
  /// Tenant-surge storm rate, evaluated once per (tenant, epoch) by the
  /// request plane's admission step: a fired surge multiplies that
  /// tenant's offered load for the epoch, and demand beyond its token
  /// bucket is shed (accounted, never silently dropped).
  double tenant_surge_rate = 0.0;
  /// Offered-load multiplier for one fired tenant surge.
  std::uint64_t surge_multiplier = 4;
  /// Cells added per polarity by one weak-cell burst.
  std::uint64_t burst_cells = 8;
  /// Events a site stays clean for after an injection.  The default of 4
  /// pairs with RetryPolicy::max_attempts = 4: see the header comment.
  unsigned cooldown = 4;
  /// Persistent faults: the component stops responding forever after this
  /// many transactions addressed to it (-1 = never).
  std::int64_t regulator_dies_after = -1;
  std::int64_t monitor_dies_after = -1;

  [[nodiscard]] bool any() const noexcept {
    return pmbus_nack_rate > 0.0 || wire_corrupt_rate > 0.0 ||
           ina_dropout_rate > 0.0 || axi_fail_rate > 0.0 ||
           spurious_crash_rate > 0.0 || weak_burst_rate > 0.0 ||
           bit_rot_rate > 0.0 || pc_kill_rate > 0.0 ||
           tenant_surge_rate > 0.0 || regulator_dies_after >= 0 ||
           monitor_dies_after >= 0;
  }
};

/// The deterministic fault schedule: a pure function from (kind, three
/// event coordinates) to fire/no-fire decisions and value draws.  Two
/// schedules with the same seed and rates agree everywhere.
class ChaosSchedule {
 public:
  explicit ChaosSchedule(const ChaosConfig& config) : config_(config) {}

  /// True when the event at coordinates (a, b, c) injects `kind`.
  [[nodiscard]] bool fires(FaultKind kind, std::uint64_t a, std::uint64_t b,
                           std::uint64_t c) const noexcept;

  /// Deterministic value draw for the same coordinates (which bit to
  /// flip, which stack to crash).
  [[nodiscard]] std::uint64_t draw(FaultKind kind, std::uint64_t a,
                                   std::uint64_t b,
                                   std::uint64_t c) const noexcept;

  [[nodiscard]] double rate(FaultKind kind) const noexcept;
  [[nodiscard]] const ChaosConfig& config() const noexcept { return config_; }

 private:
  ChaosConfig config_;
};

/// Installs the schedule into a board's fault hooks (Bus transaction
/// hook, wire corruptor, AXI dispatch hook, regulator vout listener) and
/// keeps per-kind injection counts.  Construct after board bring-up --
/// the board's REQUIRE-guarded constructor must never see injected
/// faults.  The destructor uninstalls every removable hook.
class ChaosInjector {
 public:
  ChaosInjector(board::Vcu128Board& board, ChaosConfig config);
  ~ChaosInjector();

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  [[nodiscard]] const ChaosSchedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const noexcept {
    return injected_[static_cast<unsigned>(kind)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_injected() const noexcept;

  /// Fault-storm entry point, called by the resilient runtime once per
  /// (PC, scrub/serve tick).  The fire decision is a pure function of
  /// (seed, pc_global, tick) -- like on_axi it is safe to call
  /// concurrently for *distinct* PCs, and every mutation it makes is
  /// PC-local (a weak-cell burst touches only that PC's overlay, bit rot
  /// only that PC's array words).  Returns true when anything fired, so
  /// callers can account storms without re-deriving the schedule.
  bool storm_tick(unsigned pc_global, std::uint64_t tick);

  /// Tenant-surge entry point, called by the request plane once per
  /// (tenant, epoch) at the serial admission barrier.  Returns the
  /// offered-load multiplier for this epoch: 1 when no surge fired,
  /// config.surge_multiplier when one did (counted under kTenantSurge).
  /// Pure in (seed, tenant, epoch), so plane decisions stay reproducible
  /// at any thread count.
  std::uint64_t surge_tick(std::uint64_t tenant, std::uint64_t epoch);

 private:
  /// One injection site: an event counter plus the post-injection
  /// cooldown that bounds consecutive faults (see header comment).
  struct Site {
    std::uint64_t events = 0;
    unsigned cooldown = 0;

    /// Advances the site by one event; true when this event injects.
    bool spin(const ChaosSchedule& schedule, FaultKind kind,
              std::uint64_t key, unsigned cooldown_events);
  };

  Status on_transaction(std::uint8_t address, std::uint8_t command);
  void on_frame(std::vector<std::uint8_t>& frame);
  Status on_axi(std::uint64_t run, unsigned stack, unsigned port,
                unsigned attempt);
  void on_vout(Millivolts v);
  void note(FaultKind kind);

  board::Vcu128Board& board_;
  ChaosSchedule schedule_;
  std::unordered_map<std::uint8_t, Site> nack_sites_;
  Site dropout_site_;
  Site wire_site_;
  Site crash_site_;
  std::uint64_t regulator_txns_ = 0;
  std::uint64_t monitor_txns_ = 0;
  std::array<std::atomic<std::uint64_t>, kFaultKindCount> injected_{};
  /// The regulator's vout listener list is append-only, so the listener
  /// outlives this injector; it checks this flag before touching state.
  std::shared_ptr<std::atomic<bool>> alive_;
};

}  // namespace hbmvolt::chaos
