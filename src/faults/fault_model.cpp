#include "faults/fault_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace hbmvolt::faults {
namespace {

constexpr double kMaxTailExponent = 50.0;  // exp cap; counts clamp anyway

double logistic(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

/// Uniform integer in [lo, hi] from a per-PC generator.
int uniform_int(Xoshiro256& rng, int lo, int hi) {
  return lo + static_cast<int>(rng.bounded(static_cast<std::uint64_t>(hi - lo + 1)));
}

}  // namespace

std::vector<unsigned> paper_weak_pcs() { return {4, 5, 18, 19, 20}; }

std::vector<unsigned> paper_strong_pcs() { return {0, 3, 8, 11, 14, 22, 29}; }

FaultModel::FaultModel(const hbm::HbmGeometry& geometry,
                       FaultModelConfig config)
    : geometry_(geometry), config_(config) {
  HBMVOLT_REQUIRE(geometry_.validate().is_ok(), "invalid geometry");
  const unsigned total = geometry_.total_pcs();
  pcs_.resize(total);

  // Pick the weak/strong PC sets: the paper's identified ports for the
  // standard 32-PC layout, a seeded draw otherwise.
  std::vector<unsigned> weak;
  std::vector<unsigned> strong;
  if (total == 32) {
    weak = paper_weak_pcs();
    strong = paper_strong_pcs();
  } else {
    Xoshiro256 rng(mix_seed(config_.seed, 0xC1A55));
    for (unsigned pc = 0; pc < total; ++pc) {
      const double u = rng.uniform();
      if (u < 0.16) {
        weak.push_back(pc);
      } else if (u > 0.78) {
        strong.push_back(pc);
      }
    }
    if (weak.empty()) weak.push_back(total - 1);
  }

  const auto contains = [](const std::vector<unsigned>& v, unsigned x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };

  const double delta_t =
      config_.temperature_c - config_.reference_temperature_c;
  const int thermal_onset_shift_mv =
      static_cast<int>(std::lround(config_.onset_shift_mv_per_c * delta_t));
  const double thermal_bulk_shift =
      config_.bulk_shift_volts_per_c * delta_t;

  std::vector<unsigned> weak_rank_in_stack(geometry_.stacks, 0);
  for (unsigned pc = 0; pc < total; ++pc) {
    Xoshiro256 rng(pc_seed(pc));
    PcParams& params = pcs_[pc];
    const unsigned stack = hbm::PcId::from_global(geometry_, pc).stack;

    int onset_mv;
    if (contains(weak, pc)) {
      params.strength = PcStrength::kWeak;
      params.tail_k = config_.tail_k_weak;
      const unsigned rank = std::min<unsigned>(weak_rank_in_stack[stack]++, 3);
      onset_mv =
          config_.v_first_flip.value - config_.weak_onset_offsets_mv[rank];
    } else if (contains(strong, pc)) {
      params.strength = PcStrength::kStrong;
      params.tail_k = config_.tail_k_strong;
      onset_mv = uniform_int(rng, config_.onset_strong_lo_mv,
                             config_.onset_strong_hi_mv);
    } else {
      params.strength = PcStrength::kMedium;
      params.tail_k = config_.tail_k_medium;
      onset_mv = uniform_int(rng, config_.onset_medium_lo_mv,
                             config_.onset_medium_hi_mv);
    }
    params.tail_k += rng.uniform(-config_.tail_k_jitter, config_.tail_k_jitter);

    onset_mv += thermal_onset_shift_mv;
    params.onset_sa0 = Millivolts{onset_mv};
    params.onset_sa1 =
        Millivolts{onset_mv - config_.polarity_onset_offset_mv};

    const bool on_hbm1 = stack == 1;
    params.tail_scale = on_hbm1 ? config_.hbm1_tail_multiplier : 1.0;
    params.bulk_mid_volts =
        config_.bulk_mid_volts + thermal_bulk_shift +
        (on_hbm1 ? config_.hbm1_bulk_mid_shift_volts : 0.0) +
        rng.uniform(-config_.bulk_mid_jitter_volts,
                    config_.bulk_mid_jitter_volts);
  }
}

const PcParams& FaultModel::pc_params(unsigned pc_global) const {
  HBMVOLT_REQUIRE(pc_global < pcs_.size(), "PC index out of range");
  return pcs_[pc_global];
}

std::uint64_t FaultModel::pc_seed(unsigned pc_global) const noexcept {
  // Counter-seeded per-PC stream keyed by the structural address and
  // independent of any worker scheduling (common/rng.hpp).
  const auto id = hbm::PcId::from_global(geometry_, pc_global);
  return pc_stream_seed(config_.seed, id.stack, id.channel(geometry_),
                        id.index % geometry_.pcs_per_channel,
                        geometry_.pcs_per_stack(),
                        geometry_.pcs_per_channel);
}

double FaultModel::tail_count(const PcParams& pc, Millivolts onset,
                              Millivolts v) const {
  // The first weak cell fails exactly AT the onset voltage: kappa(onset)=1.
  if (v > onset) return 0.0;
  const double arg =
      std::min(pc.tail_k * (onset.volts() - v.volts()), kMaxTailExponent);
  return pc.tail_scale * std::exp(arg);
}

double FaultModel::bulk_fraction(const PcParams& pc, Millivolts v) const {
  if (v <= config_.v_all_faulty) return 1.0;
  return logistic((pc.bulk_mid_volts - v.volts()) / config_.bulk_sigma_volts);
}

std::uint64_t FaultModel::stuck_count(unsigned pc_global,
                                      StuckPolarity polarity,
                                      Millivolts v) const {
  const PcParams& pc = pc_params(pc_global);
  const std::uint64_t n = geometry_.bits_per_pc;
  if (v.value <= 0) return 0;  // powered off: nothing to observe
  if (v <= config_.v_all_faulty) return n;  // clamped to list size downstream

  const double share = polarity == StuckPolarity::kStuckAt1
                           ? config_.stuck_at_one_share
                           : 1.0 - config_.stuck_at_one_share;
  const Millivolts onset =
      polarity == StuckPolarity::kStuckAt1 ? pc.onset_sa1 : pc.onset_sa0;
  const double expected = tail_count(pc, onset, v) +
                          share * bulk_fraction(pc, v) *
                              static_cast<double>(n);
  const double clamped = std::min(expected, static_cast<double>(n));
  return static_cast<std::uint64_t>(std::llround(clamped));
}

double FaultModel::stuck_fraction(unsigned pc_global, Millivolts v) const {
  const std::uint64_t n = geometry_.bits_per_pc;
  const std::uint64_t total =
      std::min(stuck_count(pc_global, StuckPolarity::kStuckAt0, v) +
                   stuck_count(pc_global, StuckPolarity::kStuckAt1, v),
               n);
  return static_cast<double>(total) / static_cast<double>(n);
}

double FaultModel::stack_stuck_fraction(unsigned stack, Millivolts v) const {
  HBMVOLT_REQUIRE(stack < geometry_.stacks, "stack index out of range");
  const unsigned per_stack = geometry_.pcs_per_stack();
  double sum = 0.0;
  for (unsigned i = 0; i < per_stack; ++i) {
    sum += stuck_fraction(stack * per_stack + i, v);
  }
  return sum / per_stack;
}

double FaultModel::device_stuck_fraction(Millivolts v) const {
  double sum = 0.0;
  for (unsigned s = 0; s < geometry_.stacks; ++s) {
    sum += stack_stuck_fraction(s, v);
  }
  return sum / geometry_.stacks;
}

double FaultModel::alpha_multiplier(Millivolts v) const {
  return 1.0 - config_.alpha_stuck_weight * device_stuck_fraction(v);
}

Millivolts FaultModel::onset_voltage(unsigned pc_global) const {
  // Stuck-at-0 cells fail first (their onset is higher).
  return pc_params(pc_global).onset_sa0;
}

}  // namespace hbmvolt::faults
