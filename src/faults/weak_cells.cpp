#include "faults/weak_cells.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace hbmvolt::faults {

WeakCellOrder::WeakCellOrder(const hbm::HbmGeometry& geometry,
                             std::uint64_t pc_seed,
                             const WeakCellConfig& config)
    : geometry_(geometry) {
  HBMVOLT_REQUIRE(geometry_.bits_per_pc <= (1ull << 32),
                  "simulated PC capacity limited to 2^32 bits");
  const auto n = geometry_.bits_per_pc;

  // Place cluster windows.
  Xoshiro256 cluster_rng(mix_seed(pc_seed, 0xC1057E2));
  const std::uint64_t rows = geometry_.rows_per_bank();
  for (unsigned i = 0; i < config.cluster_count; ++i) {
    ClusterWindow window;
    window.bank = static_cast<unsigned>(cluster_rng.bounded(geometry_.banks_per_pc));
    window.row_count = config.cluster_rows;
    const std::uint64_t max_lo =
        rows > window.row_count ? rows - window.row_count : 0;
    window.row_lo = cluster_rng.bounded(max_lo + 1);
    clusters_.push_back(window);
  }

  // Assign every cell a strength key and a polarity, then sort each
  // polarity's cells weakest-key-first.
  struct Keyed {
    std::uint64_t key;
    std::uint32_t cell;
  };
  std::vector<Keyed> keyed0;
  std::vector<Keyed> keyed1;
  keyed0.reserve(static_cast<std::size_t>(n / 2));
  keyed1.reserve(static_cast<std::size_t>(n / 2));

  const std::uint64_t key_seed = mix_seed(pc_seed, 0x57E26);
  const std::uint64_t polarity_seed = mix_seed(pc_seed, 0x9012A);
  const auto share1_threshold = static_cast<std::uint64_t>(
      config.stuck_at_one_share * 18446744073709551615.0);

  for (std::uint64_t cell = 0; cell < n; ++cell) {
    std::uint64_t key = splitmix64(key_seed ^ cell);
    if (in_cluster(cell)) key >>= config.cluster_key_shift;
    const bool stuck1 = splitmix64(polarity_seed ^ cell) < share1_threshold;
    (stuck1 ? keyed1 : keyed0)
        .push_back({key, static_cast<std::uint32_t>(cell)});
  }

  const auto by_key = [](const Keyed& a, const Keyed& b) {
    return a.key < b.key || (a.key == b.key && a.cell < b.cell);
  };
  std::sort(keyed0.begin(), keyed0.end(), by_key);
  std::sort(keyed1.begin(), keyed1.end(), by_key);

  order_sa0_.reserve(keyed0.size());
  for (const auto& k : keyed0) order_sa0_.push_back(k.cell);
  order_sa1_.reserve(keyed1.size());
  for (const auto& k : keyed1) order_sa1_.push_back(k.cell);
}

bool WeakCellOrder::in_cluster(std::uint64_t bit) const noexcept {
  if (clusters_.empty()) return false;
  const auto loc = hbm::decompose_beat(geometry_, bit / geometry_.bits_per_beat);
  for (const auto& window : clusters_) {
    if (loc.bank == window.bank && loc.row >= window.row_lo &&
        loc.row < window.row_lo + window.row_count) {
      return true;
    }
  }
  return false;
}

}  // namespace hbmvolt::faults
