// Stuck-at fault overlay applied to reads of an undervolted PC, and the
// FaultInjector that builds/caches one overlay per PC at the current
// supply voltage.
//
// An overlay is the materialized set of stuck cells at one voltage.  Two
// representations:
//   * sparse -- two sorted cell-index vectors (one per polarity); beats
//     are patched via binary search.  Used when few cells are stuck.
//   * dense  -- stuck-mask and stuck-value bitmaps; beats are patched with
//     four word operations.  Used deep in the unsafe region.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "faults/fault_model.hpp"
#include "faults/weak_cells.hpp"
#include "hbm/memory_array.hpp"

namespace hbmvolt::faults {

class FaultOverlay {
 public:
  /// An overlay with no stuck cells.
  FaultOverlay() = default;

  /// Materializes the first `count_sa0`/`count_sa1` cells of each polarity
  /// order (counts are clamped to the order sizes).
  static FaultOverlay build(const WeakCellOrder& order,
                            std::uint64_t count_sa0, std::uint64_t count_sa1);

  /// Patches one 256-bit beat in place.
  void apply(std::uint64_t beat, hbm::Beat& data) const noexcept;

  /// Patches the words of a whole beat range in place.  `words` spans
  /// exactly the range: words[0] is the first word of `start_beat`.
  /// Sparse overlays visit only the stuck cells inside the range.
  void apply_range(std::uint64_t start_beat, std::uint64_t beats,
                   std::span<std::uint64_t> words) const noexcept;

  /// Patches a single 64-bit word in place (`word_index` counts words from
  /// the start of the PC): the narrow sibling of apply(), for readers that
  /// only need one word of a beat (e.g. the ECC channel's check bytes).
  void apply_word(std::uint64_t word_index, std::uint64_t& word) const noexcept;

  /// Bulk verify assuming the stored data equals `pattern` over the range
  /// (it was just bulk-filled with it): only stuck cells can differ, so
  /// this touches no memory-array words at all -- O(stuck cells in range)
  /// with the sparse form, O(overlay words in range) dense, O(1) when the
  /// overlay is empty (the guardband's pattern-vs-pattern comparison).
  /// `diff_out`, when non-null, receives OR-ed per-word diffs
  /// (diff_out[0] = first word of `start_beat`).
  [[nodiscard]] hbm::RangeFlips verify_after_fill(
      std::uint64_t start_beat, std::uint64_t beats,
      const hbm::WordPattern& pattern,
      std::uint64_t* diff_out = nullptr) const noexcept;

  /// Bulk verify of arbitrary stored words against `pattern`: counts the
  /// flips of observed = overlay(stored) word-wise, without materializing
  /// Beats or a patched copy.  `stored` spans the range like apply_range's
  /// `words`; `diff_out` as in verify_after_fill.
  [[nodiscard]] hbm::RangeFlips verify_stored(
      std::uint64_t start_beat, std::uint64_t beats,
      std::span<const std::uint64_t> stored, const hbm::WordPattern& pattern,
      std::uint64_t* diff_out = nullptr) const noexcept;

  [[nodiscard]] bool is_stuck(std::uint64_t bit) const noexcept;
  /// Value a stuck bit reads as; only meaningful when is_stuck(bit).
  [[nodiscard]] bool stuck_value(std::uint64_t bit) const noexcept;

  [[nodiscard]] std::uint64_t count(StuckPolarity polarity) const noexcept {
    return polarity == StuckPolarity::kStuckAt1 ? count_sa1_ : count_sa0_;
  }
  [[nodiscard]] std::uint64_t total_count() const noexcept {
    return count_sa0_ + count_sa1_;
  }
  [[nodiscard]] bool empty() const noexcept { return total_count() == 0; }
  [[nodiscard]] bool dense() const noexcept { return !mask_.empty(); }

  /// Invokes fn(bit_index, polarity) for every stuck cell, in ascending
  /// bit order within each polarity.
  void for_each(
      const std::function<void(std::uint64_t, StuckPolarity)>& fn) const;

 private:
  // Sparse form: sorted stuck-cell indices per polarity.
  std::vector<std::uint32_t> sparse_sa0_;
  std::vector<std::uint32_t> sparse_sa1_;
  // Dense form: bit i stuck iff mask_[i]; reads as value_[i].
  std::vector<std::uint64_t> mask_;
  std::vector<std::uint64_t> value_;

  std::uint64_t count_sa0_ = 0;
  std::uint64_t count_sa1_ = 0;
};

/// Owns the per-PC weak-cell orders and the per-PC overlays at the current
/// voltage.  Shared by both HBM stacks (it spans all 32 PCs).
class FaultInjector {
 public:
  explicit FaultInjector(FaultModel model, WeakCellConfig weak_config = {});

  [[nodiscard]] const FaultModel& model() const noexcept { return model_; }

  /// Current supply voltage; changing it invalidates cached overlays.
  void set_voltage(Millivolts v);
  [[nodiscard]] Millivolts voltage() const noexcept { return voltage_; }

  /// Overlay for a PC at the current voltage (built and cached on demand).
  const FaultOverlay& overlay(unsigned pc_global);

  /// Weak-cell order for a PC (built lazily; stable across voltages).
  const WeakCellOrder& order(unsigned pc_global);

  /// Permanently weakens a PC: the next `extra_sa0`/`extra_sa1` cells of
  /// its weak-cell order become stuck *in addition to* the voltage-derived
  /// prefix, at every voltage from now on -- the model of a sudden aging /
  /// VT-shift burst (see chaos fault storms).  Raising the supply voltage
  /// still shrinks the total stuck set (the burst extends the prefix, it
  /// does not pin specific cells), and row retirement can remove burst
  /// rows.  Only this PC's cached overlay is invalidated, so concurrent
  /// workers touching *other* PCs are unaffected.
  void add_burst(unsigned pc_global, std::uint64_t extra_sa0,
                 std::uint64_t extra_sa1);

  /// Accumulated burst extras for a PC.
  [[nodiscard]] std::uint64_t burst_extra(unsigned pc_global,
                                          StuckPolarity polarity) const;

 private:
  FaultModel model_;
  WeakCellConfig weak_config_;
  Millivolts voltage_{1200};
  std::vector<std::unique_ptr<WeakCellOrder>> orders_;
  std::vector<std::unique_ptr<FaultOverlay>> overlays_;  // null = stale
  /// Per-PC burst extras appended to the voltage-derived stuck prefix
  /// (index = pc_global * 2 + polarity).
  std::vector<std::uint64_t> burst_extras_;
  FaultOverlay empty_;
};

}  // namespace hbmvolt::faults
