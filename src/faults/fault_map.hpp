// Measurement-side fault bookkeeping: what the host accumulates from the
// reliability tests, and the spatial clustering analysis run on overlays.
//
// This is the "fault map" the paper's Section III-C builds: per-voltage,
// per-PC flip counts split by direction, from which the three-factor
// trade-off (power / fault rate / usable capacity) is derived.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/geometry.hpp"

namespace hbmvolt::faults {

/// Flip counts for one PC at one voltage.
struct PcFaultRecord {
  std::uint64_t bits_tested = 0;  // across all patterns
  std::uint64_t flips_1to0 = 0;   // wrote 1, read 0 (stuck-at-0 cells)
  std::uint64_t flips_0to1 = 0;   // wrote 0, read 1 (stuck-at-1 cells)
  /// Per-pattern denominators: bits checked under all-1s (exposing 1->0
  /// flips) and all-0s (exposing 0->1).  Zero when the caller recorded
  /// only combined counts; the direction rates then fall back to the
  /// combined denominator.
  std::uint64_t bits_tested_ones = 0;
  std::uint64_t bits_tested_zeros = 0;

  [[nodiscard]] std::uint64_t total_flips() const noexcept {
    return flips_1to0 + flips_0to1;
  }
  /// Fraction of tested bits that flipped (both directions, shared
  /// denominator -- each cell counted once per pattern).
  [[nodiscard]] double rate() const noexcept {
    return bits_tested == 0
               ? 0.0
               : static_cast<double>(total_flips()) /
                     static_cast<double>(bits_tested);
  }
  [[nodiscard]] double rate_1to0() const noexcept {
    const std::uint64_t denom =
        bits_tested_ones != 0 ? bits_tested_ones : bits_tested;
    return denom == 0 ? 0.0
                      : static_cast<double>(flips_1to0) /
                            static_cast<double>(denom);
  }
  [[nodiscard]] double rate_0to1() const noexcept {
    const std::uint64_t denom =
        bits_tested_zeros != 0 ? bits_tested_zeros : bits_tested;
    return denom == 0 ? 0.0
                      : static_cast<double>(flips_0to1) /
                            static_cast<double>(denom);
  }

  PcFaultRecord& operator+=(const PcFaultRecord& other) noexcept {
    bits_tested += other.bits_tested;
    flips_1to0 += other.flips_1to0;
    flips_0to1 += other.flips_0to1;
    bits_tested_ones += other.bits_tested_ones;
    bits_tested_zeros += other.bits_tested_zeros;
    return *this;
  }
};

/// All PC records at one voltage.
struct VoltageObservation {
  std::vector<PcFaultRecord> pcs;
  bool crashed = false;
};

class FaultMap {
 public:
  explicit FaultMap(const hbm::HbmGeometry& geometry);

  [[nodiscard]] const hbm::HbmGeometry& geometry() const noexcept {
    return geometry_;
  }

  /// Accumulates flip counts for (voltage, pc).
  void record(Millivolts v, unsigned pc_global, const PcFaultRecord& record);

  /// Marks a voltage as having crashed the device.
  void record_crash(Millivolts v);

  /// Folds another map (same geometry) into this one: per-(voltage, PC)
  /// records add, crash flags OR.  Commutative and associative, so
  /// per-worker partial maps can merge in any order with one result —
  /// the contract the parallel sweep's deterministic aggregation relies
  /// on (see docs/parallelism.md).
  FaultMap& merge(const FaultMap& other);

  /// Voltages with observations, descending (nominal first).
  [[nodiscard]] std::vector<Millivolts> voltages() const;

  [[nodiscard]] const VoltageObservation* at(Millivolts v) const;

  [[nodiscard]] PcFaultRecord pc_record(Millivolts v, unsigned pc_global) const;

  /// Aggregate over one stack at a voltage.
  [[nodiscard]] PcFaultRecord stack_record(Millivolts v, unsigned stack) const;

  /// Aggregate over one memory channel (the two PCs sharing clock and
  /// command signals) at a voltage.
  [[nodiscard]] PcFaultRecord channel_record(Millivolts v, unsigned stack,
                                             unsigned channel) const;

  /// Aggregate over the whole device at a voltage.
  [[nodiscard]] PcFaultRecord device_record(Millivolts v) const;

  /// Highest observed voltage at which the PC showed any flip; nullopt if
  /// the PC never faulted in the recorded range.
  [[nodiscard]] std::optional<Millivolts> observed_onset(
      unsigned pc_global) const;

  /// Highest recorded voltage at which *any* PC faulted (V_min is one step
  /// above this).
  [[nodiscard]] std::optional<Millivolts> highest_faulty_voltage() const;

  /// Number of PCs whose fault rate at v is <= tolerable_rate (Fig 6).
  [[nodiscard]] unsigned usable_pcs(Millivolts v, double tolerable_rate) const;

 private:
  hbm::HbmGeometry geometry_;
  // Keyed by descending voltage so iteration goes nominal -> critical.
  std::map<int, VoltageObservation, std::greater<>> observations_;
};

/// Spatial clustering metrics for a stuck-cell population (anchor 11).
struct ClusteringStats {
  std::uint64_t faults = 0;
  std::uint64_t rows_total = 0;
  std::uint64_t rows_with_faults = 0;
  /// Fraction of all faults that fall in the densest 5% of rows.  ~0.05
  /// for a uniform population, near 1 for strongly clustered faults.
  double fraction_in_densest_5pct_rows = 0.0;
  /// Gap statistics (in bits) between consecutive faulty cells.  The mean
  /// gap is ~span/count for any distribution; the *median* discriminates:
  /// clustered faults have mostly-tiny gaps (within a cluster) plus a few
  /// huge ones (between clusters), so median << uniform expectation.
  double mean_gap = 0.0;
  double median_gap = 0.0;
  double uniform_expected_gap = 0.0;
};

[[nodiscard]] ClusteringStats analyze_clustering(
    const hbm::HbmGeometry& geometry, const FaultOverlay& overlay);

}  // namespace hbmvolt::faults
