#include "faults/fault_map.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace hbmvolt::faults {

FaultMap::FaultMap(const hbm::HbmGeometry& geometry) : geometry_(geometry) {}

void FaultMap::record(Millivolts v, unsigned pc_global,
                      const PcFaultRecord& record) {
  HBMVOLT_REQUIRE(pc_global < geometry_.total_pcs(), "PC index out of range");
  auto& observation = observations_[v.value];
  if (observation.pcs.empty()) {
    observation.pcs.resize(geometry_.total_pcs());
  }
  observation.pcs[pc_global] += record;
}

void FaultMap::record_crash(Millivolts v) {
  auto& observation = observations_[v.value];
  if (observation.pcs.empty()) {
    observation.pcs.resize(geometry_.total_pcs());
  }
  observation.crashed = true;
}

FaultMap& FaultMap::merge(const FaultMap& other) {
  HBMVOLT_REQUIRE(geometry_.total_pcs() == other.geometry_.total_pcs() &&
                      geometry_.stacks == other.geometry_.stacks,
                  "cannot merge maps with different geometries");
  for (const auto& [mv, theirs] : other.observations_) {
    auto& ours = observations_[mv];
    if (ours.pcs.empty()) ours.pcs.resize(geometry_.total_pcs());
    for (std::size_t pc = 0; pc < theirs.pcs.size(); ++pc) {
      ours.pcs[pc] += theirs.pcs[pc];
    }
    ours.crashed = ours.crashed || theirs.crashed;
  }
  return *this;
}

std::vector<Millivolts> FaultMap::voltages() const {
  std::vector<Millivolts> out;
  out.reserve(observations_.size());
  for (const auto& [mv, obs] : observations_) out.push_back(Millivolts{mv});
  return out;
}

const VoltageObservation* FaultMap::at(Millivolts v) const {
  const auto it = observations_.find(v.value);
  return it == observations_.end() ? nullptr : &it->second;
}

PcFaultRecord FaultMap::pc_record(Millivolts v, unsigned pc_global) const {
  HBMVOLT_REQUIRE(pc_global < geometry_.total_pcs(), "PC index out of range");
  const auto* observation = at(v);
  if (observation == nullptr || observation->pcs.empty()) return {};
  return observation->pcs[pc_global];
}

PcFaultRecord FaultMap::stack_record(Millivolts v, unsigned stack) const {
  HBMVOLT_REQUIRE(stack < geometry_.stacks, "stack index out of range");
  PcFaultRecord total;
  const unsigned per_stack = geometry_.pcs_per_stack();
  for (unsigned i = 0; i < per_stack; ++i) {
    total += pc_record(v, stack * per_stack + i);
  }
  return total;
}

PcFaultRecord FaultMap::channel_record(Millivolts v, unsigned stack,
                                       unsigned channel) const {
  HBMVOLT_REQUIRE(stack < geometry_.stacks, "stack index out of range");
  HBMVOLT_REQUIRE(channel < geometry_.channels_per_stack,
                  "channel index out of range");
  PcFaultRecord total;
  for (unsigned pc = 0; pc < geometry_.pcs_per_channel; ++pc) {
    const unsigned global = stack * geometry_.pcs_per_stack() +
                            channel * geometry_.pcs_per_channel + pc;
    total += pc_record(v, global);
  }
  return total;
}

PcFaultRecord FaultMap::device_record(Millivolts v) const {
  PcFaultRecord total;
  for (unsigned s = 0; s < geometry_.stacks; ++s) {
    total += stack_record(v, s);
  }
  return total;
}

std::optional<Millivolts> FaultMap::observed_onset(unsigned pc_global) const {
  for (const auto& [mv, observation] : observations_) {  // descending
    if (!observation.pcs.empty() &&
        observation.pcs[pc_global].total_flips() > 0) {
      return Millivolts{mv};
    }
  }
  return std::nullopt;
}

std::optional<Millivolts> FaultMap::highest_faulty_voltage() const {
  for (const auto& [mv, observation] : observations_) {  // descending
    for (const auto& record : observation.pcs) {
      if (record.total_flips() > 0) return Millivolts{mv};
    }
  }
  return std::nullopt;
}

unsigned FaultMap::usable_pcs(Millivolts v, double tolerable_rate) const {
  const auto* observation = at(v);
  if (observation == nullptr) return 0;
  if (observation->crashed) return 0;
  unsigned usable = 0;
  for (const auto& record : observation->pcs) {
    if (record.rate() <= tolerable_rate) ++usable;
  }
  return usable;
}

ClusteringStats analyze_clustering(const hbm::HbmGeometry& geometry,
                                   const FaultOverlay& overlay) {
  ClusteringStats stats;
  stats.rows_total =
      geometry.rows_per_bank() * geometry.banks_per_pc;
  stats.faults = overlay.total_count();
  if (stats.faults == 0) return stats;

  // Faults per (bank, row).
  std::vector<std::uint64_t> per_row(stats.rows_total, 0);
  std::vector<std::uint64_t> cells;
  cells.reserve(stats.faults);
  overlay.for_each([&](std::uint64_t bit, StuckPolarity) {
    const auto loc = hbm::decompose_beat(geometry, bit / geometry.bits_per_beat);
    per_row[loc.row * geometry.banks_per_pc + loc.bank] += 1;
    cells.push_back(bit);
  });

  for (const auto count : per_row) {
    if (count > 0) ++stats.rows_with_faults;
  }

  // Coverage of the densest 5% of rows.
  std::sort(per_row.begin(), per_row.end(), std::greater<>());
  const auto top = std::max<std::uint64_t>(1, stats.rows_total / 20);
  std::uint64_t in_top = 0;
  for (std::uint64_t i = 0; i < top; ++i) in_top += per_row[i];
  stats.fraction_in_densest_5pct_rows =
      static_cast<double>(in_top) / static_cast<double>(stats.faults);

  // Gap statistics over sorted cell indices.
  std::sort(cells.begin(), cells.end());
  if (cells.size() > 1) {
    std::vector<std::uint64_t> gaps;
    gaps.reserve(cells.size() - 1);
    double sum = 0.0;
    for (std::size_t i = 1; i < cells.size(); ++i) {
      gaps.push_back(cells[i] - cells[i - 1]);
      sum += static_cast<double>(gaps.back());
    }
    stats.mean_gap = sum / static_cast<double>(gaps.size());
    std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2,
                     gaps.end());
    stats.median_gap = static_cast<double>(gaps[gaps.size() / 2]);
  }
  stats.uniform_expected_gap = static_cast<double>(geometry.bits_per_pc) /
                               static_cast<double>(stats.faults);
  return stats;
}

}  // namespace hbmvolt::faults
