// Voltage-dependent fault model for undervolted HBM, calibrated to the
// paper's measurements (DESIGN.md lists every anchor).
//
// Each pseudo-channel has two weak-cell populations, one per stuck-at
// polarity: stuck-at-0 cells produce 1->0 flips, stuck-at-1 cells produce
// 0->1 flips.  For a PC at voltage v the model gives the *number* of stuck
// cells per polarity as the sum of two regimes:
//
//   tail:  kappa(v) = exp(k_t * (V_onset - v))      [count, capacity-free]
//     A handful of outlier cells fail first.  kappa(V_onset) = 1 -- the
//     first cell fails exactly at the PC's onset voltage, so onset behavior
//     matches the real device at any simulated capacity.  k_t is the
//     exponential growth rate the paper observes ("faults increase
//     exponentially"); weak PCs have larger k_t.
//
//   bulk:  share * n * logistic((V_mid - v) / sigma) [fraction-based]
//     The main cell population collapses around V_mid ~ 0.853 V, reaching
//     "all bits faulty" by 0.841 V (anchor 5); below that the count is
//     clamped to the full population.
//
// Process variation (anchors 7, 8): per-PC onset voltages and growth rates
// are drawn deterministically from the device seed; the PCs the paper
// identifies as weak (PC4, PC5 on HBM0; PC18-20 on HBM1) get the highest
// onsets, and HBM1 carries a stack-level handicap so its average fault
// rate in the unsafe region exceeds HBM0's by ~13%.
//
// Polarity (anchors 4, 9): stuck-at-1 cells are 54.75% of the population
// (0.5475 / 0.4525 = 1.21, the paper's 21% excess of 0->1 flips), but
// their tail onset sits 10 mV below the stuck-at-0 onset, so the first
// observed flip is 1->0 at 0.97 V and the first 0->1 flip appears at
// 0.96 V, exactly as measured.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "hbm/geometry.hpp"

namespace hbmvolt::faults {

enum class StuckPolarity : std::uint8_t {
  kStuckAt0 = 0,  // observed as 1->0 flips
  kStuckAt1 = 1,  // observed as 0->1 flips
};

enum class PcStrength : std::uint8_t { kStrong, kMedium, kWeak };

struct FaultModelConfig {
  std::uint64_t seed = 0xB5C0FFEEULL;

  // Voltage landmarks (anchors 1, 4, 5, 6).
  Millivolts v_nom{1200};
  Millivolts v_min{980};          // highest voltage with zero faults anywhere
  Millivolts v_first_flip{970};   // weakest PC's stuck-at-0 onset
  int polarity_onset_offset_mv = 10;  // stuck-at-1 onset sits this far below
  Millivolts v_all_faulty{841};   // at or below: every cell stuck
  Millivolts v_critical{810};     // below: stack crashes

  // Polarity shares (anchor 9): share1/share0 = 1.21.
  double stuck_at_one_share = 0.5475;

  // Bulk-collapse logistic (anchors 5, 10).
  double bulk_mid_volts = 0.8525;
  double bulk_sigma_volts = 0.0035;
  double bulk_mid_jitter_volts = 0.0008;  // per-PC
  double hbm1_bulk_mid_shift_volts = 0.0012;  // HBM1 collapses earlier (anchor 7)

  // Tail growth rates per strength class, in 1/V (jittered per PC).
  double tail_k_strong = 42.0;
  double tail_k_medium = 52.0;
  double tail_k_weak = 75.0;
  double tail_k_jitter = 4.0;
  double hbm1_tail_multiplier = 1.05;  // scales HBM1 tail counts (anchor 7)

  // Onset voltage ranges per strength class, in mV (jittered per PC).
  // Strong PCs stay fault-free at 0.95 V (Fig 6's "7 fault-free PCs");
  // medium onsets start above 0.95 V so only the strong set qualifies.
  int onset_strong_lo_mv = 938;
  int onset_strong_hi_mv = 944;
  int onset_medium_lo_mv = 951;
  int onset_medium_hi_mv = 961;
  // Weak PCs take onsets v_first_flip - offset[rank] within their stack
  // (rank = order of appearance).  Both stacks' weakest PCs fault at the
  // same voltage -- the paper observes identical V_min on HBM0 and HBM1.
  // The ladder keeps the cross-stack tail gap near the paper's 13%.
  int weak_onset_offsets_mv[4] = {0, 3, 7, 10};

  // Operating temperature.  The paper held 35 +/- 1 degC (its anchors are
  // calibrated at that point); this knob extends the model for thermal
  // studies: hotter silicon has less timing/retention margin, so fault
  // onsets shift up (guardband narrows) and the bulk collapse moves
  // earlier.  At temperature_c == 35 the shifts vanish and every paper
  // anchor holds exactly.
  double temperature_c = 35.0;
  double reference_temperature_c = 35.0;
  double onset_shift_mv_per_c = 0.25;      // ~+12 mV from 35 -> 85 degC
  double bulk_shift_volts_per_c = 0.00008;

  // Power-model coupling (anchor 10): effective switching activity drops
  // as cells get stuck; alpha_eff = 1 - w * stuck_fraction, with w chosen
  // so alpha*C_L*f sits ~14% below nominal at 0.85 V.
  double alpha_stuck_weight = 0.20;
};

/// Static per-PC parameters drawn at construction (the "process lot").
struct PcParams {
  PcStrength strength = PcStrength::kMedium;
  Millivolts onset_sa0{950};  // stuck-at-0 tail onset
  Millivolts onset_sa1{940};  // stuck-at-1 tail onset
  double tail_k = 52.0;       // 1/V
  double tail_scale = 1.0;    // stack handicap multiplier
  double bulk_mid_volts = 0.8525;
};

class FaultModel {
 public:
  FaultModel(const hbm::HbmGeometry& geometry, FaultModelConfig config);

  [[nodiscard]] const hbm::HbmGeometry& geometry() const noexcept {
    return geometry_;
  }
  [[nodiscard]] const FaultModelConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const PcParams& pc_params(unsigned pc_global) const;

  /// Expected stuck-cell count for one polarity of one PC at voltage v.
  [[nodiscard]] std::uint64_t stuck_count(unsigned pc_global,
                                          StuckPolarity polarity,
                                          Millivolts v) const;

  /// Total stuck fraction of one PC (both polarities) at voltage v.
  [[nodiscard]] double stuck_fraction(unsigned pc_global, Millivolts v) const;

  /// Stuck fraction aggregated over a whole stack.
  [[nodiscard]] double stack_stuck_fraction(unsigned stack,
                                            Millivolts v) const;

  /// Stuck fraction aggregated over the entire device.
  [[nodiscard]] double device_stuck_fraction(Millivolts v) const;

  /// Effective switching-activity multiplier at voltage v (anchor 10).
  [[nodiscard]] double alpha_multiplier(Millivolts v) const;

  /// Highest voltage at which this PC has at least one stuck cell.
  [[nodiscard]] Millivolts onset_voltage(unsigned pc_global) const;

  /// True when operating at v crashes the stacks (v below V_critical but
  /// not powered off).
  [[nodiscard]] bool is_crash_voltage(Millivolts v) const noexcept {
    return v.value > 0 && v < config_.v_critical;
  }

  /// Per-PC deterministic sub-seed (weak-cell placement).
  [[nodiscard]] std::uint64_t pc_seed(unsigned pc_global) const noexcept;

 private:
  [[nodiscard]] double tail_count(const PcParams& pc, Millivolts onset,
                                  Millivolts v) const;
  [[nodiscard]] double bulk_fraction(const PcParams& pc, Millivolts v) const;

  hbm::HbmGeometry geometry_;
  FaultModelConfig config_;
  std::vector<PcParams> pcs_;
};

/// The PCs the paper singles out as most undervolt-sensitive (Fig 5):
/// PC4/PC5 on HBM0 and PC18/PC19/PC20 on HBM1 (global numbering).
[[nodiscard]] std::vector<unsigned> paper_weak_pcs();

/// Seven strongest PCs (fault-free at 0.95 V, Fig 6's "7 fault-free PCs").
[[nodiscard]] std::vector<unsigned> paper_strong_pcs();

}  // namespace hbmvolt::faults
