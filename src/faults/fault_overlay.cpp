#include "faults/fault_overlay.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace hbmvolt::faults {
namespace {

/// Dense representation pays off once the stuck set is larger than ~1.5%
/// of cells (one stuck cell per 64-bit word on average).
bool should_use_dense(std::uint64_t stuck, std::uint64_t bits) {
  return stuck > bits / 64;
}

}  // namespace

FaultOverlay FaultOverlay::build(const WeakCellOrder& order,
                                 std::uint64_t count_sa0,
                                 std::uint64_t count_sa1) {
  FaultOverlay overlay;
  const auto& sa0 = order.order(StuckPolarity::kStuckAt0);
  const auto& sa1 = order.order(StuckPolarity::kStuckAt1);
  count_sa0 = std::min<std::uint64_t>(count_sa0, sa0.size());
  count_sa1 = std::min<std::uint64_t>(count_sa1, sa1.size());
  overlay.count_sa0_ = count_sa0;
  overlay.count_sa1_ = count_sa1;
  if (count_sa0 + count_sa1 == 0) return overlay;

  if (should_use_dense(count_sa0 + count_sa1, order.bits())) {
    overlay.mask_.assign(order.bits() / 64, 0);
    overlay.value_.assign(order.bits() / 64, 0);
    for (std::uint64_t i = 0; i < count_sa0; ++i) {
      const std::uint32_t cell = sa0[i];
      overlay.mask_[cell / 64] |= 1ull << (cell % 64);
      // value bit stays 0: stuck-at-0
    }
    for (std::uint64_t i = 0; i < count_sa1; ++i) {
      const std::uint32_t cell = sa1[i];
      overlay.mask_[cell / 64] |= 1ull << (cell % 64);
      overlay.value_[cell / 64] |= 1ull << (cell % 64);
    }
  } else {
    overlay.sparse_sa0_.assign(sa0.begin(), sa0.begin() + count_sa0);
    overlay.sparse_sa1_.assign(sa1.begin(), sa1.begin() + count_sa1);
    std::sort(overlay.sparse_sa0_.begin(), overlay.sparse_sa0_.end());
    std::sort(overlay.sparse_sa1_.begin(), overlay.sparse_sa1_.end());
  }
  return overlay;
}

void FaultOverlay::apply(std::uint64_t beat, hbm::Beat& data) const noexcept {
  if (empty()) return;
  const std::uint64_t lo = beat * 256;
  if (!mask_.empty()) {
    const std::uint64_t w = lo / 64;
    for (int i = 0; i < 4; ++i) {
      data[i] = (data[i] & ~mask_[w + i]) | (value_[w + i] & mask_[w + i]);
    }
    return;
  }
  const std::uint64_t hi = lo + 256;
  auto patch = [&](const std::vector<std::uint32_t>& cells, bool stuck_one) {
    auto it = std::lower_bound(cells.begin(), cells.end(), lo);
    for (; it != cells.end() && *it < hi; ++it) {
      const std::uint64_t offset = *it - lo;
      const std::uint64_t bit = 1ull << (offset % 64);
      if (stuck_one) {
        data[offset / 64] |= bit;
      } else {
        data[offset / 64] &= ~bit;
      }
    }
  };
  patch(sparse_sa0_, false);
  patch(sparse_sa1_, true);
}

bool FaultOverlay::is_stuck(std::uint64_t bit) const noexcept {
  if (!mask_.empty()) {
    return (mask_[bit / 64] >> (bit % 64)) & 1ull;
  }
  const auto cell = static_cast<std::uint32_t>(bit);
  return std::binary_search(sparse_sa0_.begin(), sparse_sa0_.end(), cell) ||
         std::binary_search(sparse_sa1_.begin(), sparse_sa1_.end(), cell);
}

bool FaultOverlay::stuck_value(std::uint64_t bit) const noexcept {
  if (!mask_.empty()) {
    return (value_[bit / 64] >> (bit % 64)) & 1ull;
  }
  return std::binary_search(sparse_sa1_.begin(), sparse_sa1_.end(),
                            static_cast<std::uint32_t>(bit));
}

void FaultOverlay::for_each(
    const std::function<void(std::uint64_t, StuckPolarity)>& fn) const {
  if (!mask_.empty()) {
    for (std::uint64_t w = 0; w < mask_.size(); ++w) {
      std::uint64_t bits = mask_[w];
      while (bits != 0) {
        const int offset = __builtin_ctzll(bits);
        bits &= bits - 1;
        const std::uint64_t cell = w * 64 + static_cast<unsigned>(offset);
        const bool one = (value_[w] >> offset) & 1ull;
        fn(cell, one ? StuckPolarity::kStuckAt1 : StuckPolarity::kStuckAt0);
      }
    }
    return;
  }
  for (const auto cell : sparse_sa0_) fn(cell, StuckPolarity::kStuckAt0);
  for (const auto cell : sparse_sa1_) fn(cell, StuckPolarity::kStuckAt1);
}

// ------------------------------ FaultInjector ------------------------------

FaultInjector::FaultInjector(FaultModel model, WeakCellConfig weak_config)
    : model_(std::move(model)), weak_config_(weak_config) {
  weak_config_.stuck_at_one_share = model_.config().stuck_at_one_share;
  const unsigned total = model_.geometry().total_pcs();
  orders_.resize(total);
  overlays_.resize(total);
}

void FaultInjector::set_voltage(Millivolts v) {
  if (v == voltage_) return;
  voltage_ = v;
  for (auto& overlay : overlays_) overlay.reset();
}

const WeakCellOrder& FaultInjector::order(unsigned pc_global) {
  HBMVOLT_REQUIRE(pc_global < orders_.size(), "PC index out of range");
  auto& slot = orders_[pc_global];
  if (!slot) {
    slot = std::make_unique<WeakCellOrder>(
        model_.geometry(), model_.pc_seed(pc_global), weak_config_);
  }
  return *slot;
}

const FaultOverlay& FaultInjector::overlay(unsigned pc_global) {
  HBMVOLT_REQUIRE(pc_global < overlays_.size(), "PC index out of range");
  auto& slot = overlays_[pc_global];
  if (!slot) {
    const std::uint64_t k0 =
        model_.stuck_count(pc_global, StuckPolarity::kStuckAt0, voltage_);
    const std::uint64_t k1 =
        model_.stuck_count(pc_global, StuckPolarity::kStuckAt1, voltage_);
    if (k0 + k1 == 0) {
      // Guardband fast path: cache an empty overlay without materializing
      // the weak-cell order.
      slot = std::make_unique<FaultOverlay>();
    } else {
      slot = std::make_unique<FaultOverlay>(
          FaultOverlay::build(order(pc_global), k0, k1));
    }
  }
  return *slot;
}

}  // namespace hbmvolt::faults
