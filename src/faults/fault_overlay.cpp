#include "faults/fault_overlay.hpp"

#include <algorithm>
#include <bit>

#include "common/status.hpp"

namespace hbmvolt::faults {
namespace {

/// Dense representation pays off once the stuck set is larger than ~1.5%
/// of cells (one stuck cell per 64-bit word on average).
bool should_use_dense(std::uint64_t stuck, std::uint64_t bits) {
  return stuck > bits / 64;
}

}  // namespace

FaultOverlay FaultOverlay::build(const WeakCellOrder& order,
                                 std::uint64_t count_sa0,
                                 std::uint64_t count_sa1) {
  FaultOverlay overlay;
  const auto& sa0 = order.order(StuckPolarity::kStuckAt0);
  const auto& sa1 = order.order(StuckPolarity::kStuckAt1);
  count_sa0 = std::min<std::uint64_t>(count_sa0, sa0.size());
  count_sa1 = std::min<std::uint64_t>(count_sa1, sa1.size());
  overlay.count_sa0_ = count_sa0;
  overlay.count_sa1_ = count_sa1;
  if (count_sa0 + count_sa1 == 0) return overlay;

  if (should_use_dense(count_sa0 + count_sa1, order.bits())) {
    overlay.mask_.assign(order.bits() / 64, 0);
    overlay.value_.assign(order.bits() / 64, 0);
    for (std::uint64_t i = 0; i < count_sa0; ++i) {
      const std::uint32_t cell = sa0[i];
      overlay.mask_[cell / 64] |= 1ull << (cell % 64);
      // value bit stays 0: stuck-at-0
    }
    for (std::uint64_t i = 0; i < count_sa1; ++i) {
      const std::uint32_t cell = sa1[i];
      overlay.mask_[cell / 64] |= 1ull << (cell % 64);
      overlay.value_[cell / 64] |= 1ull << (cell % 64);
    }
  } else {
    overlay.sparse_sa0_.assign(sa0.begin(), sa0.begin() + count_sa0);
    overlay.sparse_sa1_.assign(sa1.begin(), sa1.begin() + count_sa1);
    std::sort(overlay.sparse_sa0_.begin(), overlay.sparse_sa0_.end());
    std::sort(overlay.sparse_sa1_.begin(), overlay.sparse_sa1_.end());
  }
  return overlay;
}

void FaultOverlay::apply(std::uint64_t beat, hbm::Beat& data) const noexcept {
  if (empty()) return;
  const std::uint64_t lo = beat * 256;
  if (!mask_.empty()) {
    const std::uint64_t w = lo / 64;
    for (int i = 0; i < 4; ++i) {
      data[i] = (data[i] & ~mask_[w + i]) | (value_[w + i] & mask_[w + i]);
    }
    return;
  }
  const std::uint64_t hi = lo + 256;
  auto patch = [&](const std::vector<std::uint32_t>& cells, bool stuck_one) {
    auto it = std::lower_bound(cells.begin(), cells.end(), lo);
    for (; it != cells.end() && *it < hi; ++it) {
      const std::uint64_t offset = *it - lo;
      const std::uint64_t bit = 1ull << (offset % 64);
      if (stuck_one) {
        data[offset / 64] |= bit;
      } else {
        data[offset / 64] &= ~bit;
      }
    }
  };
  patch(sparse_sa0_, false);
  patch(sparse_sa1_, true);
}

void FaultOverlay::apply_range(std::uint64_t start_beat, std::uint64_t beats,
                               std::span<std::uint64_t> words) const noexcept {
  if (empty()) return;
  const std::uint64_t w0 = start_beat * 4;
  if (!mask_.empty()) {
    for (std::uint64_t i = 0; i < words.size(); ++i) {
      const std::uint64_t m = mask_[w0 + i];
      words[i] = (words[i] & ~m) | (value_[w0 + i] & m);
    }
    return;
  }
  const std::uint64_t lo = start_beat * 256;
  const std::uint64_t hi = lo + beats * 256;
  auto patch = [&](const std::vector<std::uint32_t>& cells, bool stuck_one) {
    auto it = std::lower_bound(cells.begin(), cells.end(), lo);
    for (; it != cells.end() && *it < hi; ++it) {
      const std::uint64_t offset = *it - lo;
      const std::uint64_t bit = 1ull << (offset % 64);
      if (stuck_one) {
        words[offset / 64] |= bit;
      } else {
        words[offset / 64] &= ~bit;
      }
    }
  };
  patch(sparse_sa0_, false);
  patch(sparse_sa1_, true);
}

void FaultOverlay::apply_word(std::uint64_t word_index,
                              std::uint64_t& word) const noexcept {
  if (empty()) return;
  if (!mask_.empty()) {
    const std::uint64_t m = mask_[word_index];
    word = (word & ~m) | (value_[word_index] & m);
    return;
  }
  const std::uint64_t lo = word_index * 64;
  const std::uint64_t hi = lo + 64;
  auto patch = [&](const std::vector<std::uint32_t>& cells, bool stuck_one) {
    auto it = std::lower_bound(cells.begin(), cells.end(), lo);
    for (; it != cells.end() && *it < hi; ++it) {
      const std::uint64_t bit = 1ull << (*it - lo);
      if (stuck_one) {
        word |= bit;
      } else {
        word &= ~bit;
      }
    }
  };
  patch(sparse_sa0_, false);
  patch(sparse_sa1_, true);
}

hbm::RangeFlips FaultOverlay::verify_after_fill(
    std::uint64_t start_beat, std::uint64_t beats,
    const hbm::WordPattern& pattern, std::uint64_t* diff_out) const noexcept {
  hbm::RangeFlips out;
  if (empty()) return out;  // stored == pattern: nothing can differ
  const std::uint64_t w0 = start_beat * 4;
  if (!mask_.empty()) {
    for (std::uint64_t b = 0; b < beats; ++b) {
      std::uint64_t any = 0;
      for (unsigned w = 0; w < 4; ++w) {
        const std::uint64_t i = b * 4 + w;
        const std::uint64_t m = mask_[w0 + i];
        if (m == 0) continue;
        const std::uint64_t expected = pattern.word(w0 + i);
        const std::uint64_t diff = (value_[w0 + i] ^ expected) & m;
        out.flips_1to0 +=
            static_cast<unsigned>(std::popcount(diff & expected));
        out.flips_0to1 +=
            static_cast<unsigned>(std::popcount(diff & ~expected));
        any |= diff;
        if (diff_out != nullptr) diff_out[i] |= diff;
      }
      if (any != 0) ++out.mismatched_beats;
    }
    return out;
  }
  // Sparse: merge the two sorted polarity lists so cells (and therefore
  // beats) are visited in ascending order -- O(stuck cells in range).
  const std::uint64_t lo = start_beat * 256;
  const std::uint64_t hi = lo + beats * 256;
  auto it0 = std::lower_bound(sparse_sa0_.begin(), sparse_sa0_.end(), lo);
  auto it1 = std::lower_bound(sparse_sa1_.begin(), sparse_sa1_.end(), lo);
  std::uint64_t last_beat = ~0ull;
  while (true) {
    const bool has0 = it0 != sparse_sa0_.end() && *it0 < hi;
    const bool has1 = it1 != sparse_sa1_.end() && *it1 < hi;
    if (!has0 && !has1) break;
    const bool stuck_one = !has0 || (has1 && *it1 < *it0);
    const std::uint64_t cell = stuck_one ? *it1++ : *it0++;
    const bool expected = pattern.bit(cell);
    if (stuck_one == expected) continue;
    (expected ? out.flips_1to0 : out.flips_0to1) += 1;
    if (diff_out != nullptr) {
      diff_out[(cell - lo) / 64] |= 1ull << (cell % 64);
    }
    const std::uint64_t beat = cell / 256;
    if (beat != last_beat) {
      ++out.mismatched_beats;
      last_beat = beat;
    }
  }
  return out;
}

hbm::RangeFlips FaultOverlay::verify_stored(
    std::uint64_t start_beat, std::uint64_t beats,
    std::span<const std::uint64_t> stored, const hbm::WordPattern& pattern,
    std::uint64_t* diff_out) const noexcept {
  hbm::RangeFlips out;
  const std::uint64_t w0 = start_beat * 4;
  const bool dense = !mask_.empty();
  // Sparse cursors advance monotonically alongside the word scan, so the
  // patching cost is O(words + stuck) rather than a search per word.
  const std::uint64_t lo = start_beat * 256;
  auto it0 = std::lower_bound(sparse_sa0_.begin(), sparse_sa0_.end(), lo);
  auto it1 = std::lower_bound(sparse_sa1_.begin(), sparse_sa1_.end(), lo);
  for (std::uint64_t b = 0; b < beats; ++b) {
    std::uint64_t any = 0;
    for (unsigned w = 0; w < 4; ++w) {
      const std::uint64_t i = b * 4 + w;
      std::uint64_t observed = stored[i];
      if (dense) {
        const std::uint64_t m = mask_[w0 + i];
        observed = (observed & ~m) | (value_[w0 + i] & m);
      } else {
        const std::uint64_t word_lo = lo + i * 64;
        const std::uint64_t word_hi = word_lo + 64;
        while (it0 != sparse_sa0_.end() && *it0 < word_hi) {
          observed &= ~(1ull << (*it0 - word_lo));
          ++it0;
        }
        while (it1 != sparse_sa1_.end() && *it1 < word_hi) {
          observed |= 1ull << (*it1 - word_lo);
          ++it1;
        }
      }
      const std::uint64_t expected = pattern.word(w0 + i);
      const std::uint64_t diff = observed ^ expected;
      out.flips_1to0 +=
          static_cast<unsigned>(std::popcount(diff & expected));
      out.flips_0to1 +=
          static_cast<unsigned>(std::popcount(diff & ~expected));
      any |= diff;
      if (diff_out != nullptr) diff_out[i] |= diff;
    }
    if (any != 0) ++out.mismatched_beats;
  }
  return out;
}

bool FaultOverlay::is_stuck(std::uint64_t bit) const noexcept {
  if (!mask_.empty()) {
    return (mask_[bit / 64] >> (bit % 64)) & 1ull;
  }
  const auto cell = static_cast<std::uint32_t>(bit);
  return std::binary_search(sparse_sa0_.begin(), sparse_sa0_.end(), cell) ||
         std::binary_search(sparse_sa1_.begin(), sparse_sa1_.end(), cell);
}

bool FaultOverlay::stuck_value(std::uint64_t bit) const noexcept {
  if (!mask_.empty()) {
    return (value_[bit / 64] >> (bit % 64)) & 1ull;
  }
  return std::binary_search(sparse_sa1_.begin(), sparse_sa1_.end(),
                            static_cast<std::uint32_t>(bit));
}

void FaultOverlay::for_each(
    const std::function<void(std::uint64_t, StuckPolarity)>& fn) const {
  if (!mask_.empty()) {
    for (std::uint64_t w = 0; w < mask_.size(); ++w) {
      std::uint64_t bits = mask_[w];
      while (bits != 0) {
        const int offset = __builtin_ctzll(bits);
        bits &= bits - 1;
        const std::uint64_t cell = w * 64 + static_cast<unsigned>(offset);
        const bool one = (value_[w] >> offset) & 1ull;
        fn(cell, one ? StuckPolarity::kStuckAt1 : StuckPolarity::kStuckAt0);
      }
    }
    return;
  }
  for (const auto cell : sparse_sa0_) fn(cell, StuckPolarity::kStuckAt0);
  for (const auto cell : sparse_sa1_) fn(cell, StuckPolarity::kStuckAt1);
}

// ------------------------------ FaultInjector ------------------------------

FaultInjector::FaultInjector(FaultModel model, WeakCellConfig weak_config)
    : model_(std::move(model)), weak_config_(weak_config) {
  weak_config_.stuck_at_one_share = model_.config().stuck_at_one_share;
  const unsigned total = model_.geometry().total_pcs();
  orders_.resize(total);
  overlays_.resize(total);
  burst_extras_.assign(static_cast<std::size_t>(total) * 2, 0);
}

void FaultInjector::add_burst(unsigned pc_global, std::uint64_t extra_sa0,
                              std::uint64_t extra_sa1) {
  HBMVOLT_REQUIRE(pc_global < overlays_.size(), "PC index out of range");
  burst_extras_[pc_global * 2 + 0] += extra_sa0;
  burst_extras_[pc_global * 2 + 1] += extra_sa1;
  overlays_[pc_global].reset();
}

std::uint64_t FaultInjector::burst_extra(unsigned pc_global,
                                         StuckPolarity polarity) const {
  HBMVOLT_REQUIRE(pc_global < overlays_.size(), "PC index out of range");
  return burst_extras_[pc_global * 2 +
                       (polarity == StuckPolarity::kStuckAt1 ? 1 : 0)];
}

void FaultInjector::set_voltage(Millivolts v) {
  if (v == voltage_) return;
  voltage_ = v;
  for (auto& overlay : overlays_) overlay.reset();
}

const WeakCellOrder& FaultInjector::order(unsigned pc_global) {
  HBMVOLT_REQUIRE(pc_global < orders_.size(), "PC index out of range");
  auto& slot = orders_[pc_global];
  if (!slot) {
    slot = std::make_unique<WeakCellOrder>(
        model_.geometry(), model_.pc_seed(pc_global), weak_config_);
  }
  return *slot;
}

const FaultOverlay& FaultInjector::overlay(unsigned pc_global) {
  HBMVOLT_REQUIRE(pc_global < overlays_.size(), "PC index out of range");
  auto& slot = overlays_[pc_global];
  if (!slot) {
    const std::uint64_t k0 =
        model_.stuck_count(pc_global, StuckPolarity::kStuckAt0, voltage_) +
        burst_extras_[pc_global * 2 + 0];
    const std::uint64_t k1 =
        model_.stuck_count(pc_global, StuckPolarity::kStuckAt1, voltage_) +
        burst_extras_[pc_global * 2 + 1];
    if (k0 + k1 == 0) {
      // Guardband fast path: cache an empty overlay without materializing
      // the weak-cell order.
      slot = std::make_unique<FaultOverlay>();
    } else {
      slot = std::make_unique<FaultOverlay>(
          FaultOverlay::build(order(pc_global), k0, k1));
    }
  }
  return *slot;
}

}  // namespace hbmvolt::faults
