// Deterministic weak-cell ordering for one pseudo-channel.
//
// Undervolting faults appear in a fixed order as voltage drops: the cell
// with the lowest "strength" fails first.  This class materializes that
// order once per PC: every cell gets a pseudo-random strength key derived
// from the PC seed, cells inside a small set of *cluster windows*
// (bank/row regions, modelling the paper's observation that "most faults
// are clustered together in small regions") get their keys scaled down so
// they dominate the weak end of the order, and the order is partitioned by
// stuck-at polarity.  The set of stuck cells at any voltage is then simply
// a prefix of each polarity's order -- monotone in voltage by construction.

#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_model.hpp"
#include "hbm/geometry.hpp"

namespace hbmvolt::faults {

/// A rectangular weak region: `row_count` consecutive rows of one bank.
struct ClusterWindow {
  unsigned bank = 0;
  std::uint64_t row_lo = 0;
  unsigned row_count = 1;
};

struct WeakCellConfig {
  /// Number of cluster windows per PC; 0 disables clustering (ablation).
  unsigned cluster_count = 6;
  /// Rows per cluster window.
  unsigned cluster_rows = 2;
  /// Key right-shift inside clusters: keys shrink by 2^shift, so cluster
  /// cells crowd the weak end of the order.
  unsigned cluster_key_shift = 5;
  /// Fraction of cells that are stuck-at-1 when they fail.
  double stuck_at_one_share = 0.5475;
};

class WeakCellOrder {
 public:
  WeakCellOrder(const hbm::HbmGeometry& geometry, std::uint64_t pc_seed,
                const WeakCellConfig& config);

  /// Cells of the given polarity, weakest first.
  [[nodiscard]] const std::vector<std::uint32_t>& order(
      StuckPolarity polarity) const noexcept {
    return polarity == StuckPolarity::kStuckAt1 ? order_sa1_ : order_sa0_;
  }

  [[nodiscard]] const std::vector<ClusterWindow>& clusters() const noexcept {
    return clusters_;
  }

  /// Whether a bit index lies inside any cluster window.
  [[nodiscard]] bool in_cluster(std::uint64_t bit) const noexcept;

  [[nodiscard]] std::uint64_t bits() const noexcept {
    return geometry_.bits_per_pc;
  }

 private:
  hbm::HbmGeometry geometry_;
  std::vector<ClusterWindow> clusters_;
  std::vector<std::uint32_t> order_sa0_;
  std::vector<std::uint32_t> order_sa1_;
};

}  // namespace hbmvolt::faults
