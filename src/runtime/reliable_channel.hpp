// ReliableChannel: a supervised closed loop that keeps one undervolted
// pseudo-channel serving *correct* read/write traffic.
//
// The paper's Fig-6 trade-off assumes a lab-measured fault map and an
// offline mitigation decision; this runtime makes the decision online,
// stacking the repo's mitigation primitives into a ladder:
//
//   rung 0  correct      SECDED per word (ecc::EccChannel) + a patrol
//                        scrubber that writes corrections back before
//                        independent upsets pair up into uncorrectable
//                        words, under an error-budget monitor
//                        (error_budget.hpp).
//   rung 1  retire       when the budget burns, retire-and-remap the
//                        offending DRAM rows online: quiesce the beat,
//                        migrate live data to a spare through ECC,
//                        resume.  PC-local, so fleets can run it
//                        concurrently on distinct PCs.  When spares run
//                        out, an uncorrectable-at-nominal word is first
//                        rewritten in place from the journal (clearing
//                        soft upsets); if stuck cells keep it
//                        uncorrectable it is *parked* -- served from the
//                        host-side journal from then on, trading host
//                        memory for correctness instead of failing.
//   rung 2  raise        when retirement cannot help (no offender rows,
//                        spares exhausted, or a migration read is
//                        uncorrectable), raise the supply one step --
//                        stuck-at faults are voltage-keyed, so stored
//                        data that was uncorrectable becomes readable
//                        again (the stack keeps what was written; the
//                        overlay shrinks).
//   rung 3  power-cycle  last resort at nominal voltage: power-cycle the
//                        board and restore every live beat from the
//                        host-side journal (the last consistent state).
//
// The caller-visible contract, pinned by tests/runtime_test.cpp: read()
// NEVER returns corrupt data.  A word the code cannot correct yields a
// kDataLoss status and a recorded escalation; after escalate() (and any
// global action it requests) the retried read succeeds.  Capacity,
// voltage, and ladder position may degrade -- data may not.
//
// Logical address space: a fixed [0, capacity()) beat range.  A
// `spare_fraction` of the ECC data beats is held back at construction as
// migration spares, so retirement never shrinks the exposed capacity; it
// consumes spares instead (runtime.spares_free gauges the headroom).
//
// Fast path (the range engine): read_range/write_range split a request at
// the sparse exception set (parked or remapped beats -- a one-branch probe
// in the common no-faults case, see flat_index.hpp) and serve the plain
// runs through EccChannel's bulk decode/encode; patrol scrub runs the same
// split and additionally skips blocks a previous pass (or a piggybacking
// clean range read) proved clean.  The per-beat engine (ChannelEngine::
// kPerBeat) executes the identical policy one beat at a time; fingerprints
// are byte-identical between the two at any thread count, which
// tests/range_test.cpp pins twin-universe style.

#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "board/vcu128.hpp"
#include "common/status.hpp"
#include "ecc/ecc_channel.hpp"
#include "runtime/error_budget.hpp"
#include "runtime/flat_index.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "workload/trace.hpp"

namespace hbmvolt::runtime {

/// Mechanism selector for the bulk operations (range I/O, patrol scrub,
/// journal restore/refresh).  Policy -- accounting order, scrub cadence,
/// clean-block marks -- is shared; only the execution strategy differs,
/// and results are byte-identical (the twin-universe check).
enum class ChannelEngine : unsigned {
  kRange = 0,    // bulk runs through EccChannel::{decode,encode,scrub}_range
  kPerBeat = 1,  // reference: one EccChannel beat call per beat
};

struct ReliableChannelConfig {
  ErrorBudgetConfig budget;
  /// Foreground ops between patrol-scrub slices (0 = no patrol).
  std::uint64_t scrub_interval_ops = 64;
  /// Logical beats scrubbed per slice.
  std::uint64_t scrub_batch_beats = 8;
  /// Corrected/uncorrectable events on a (bank, row) before it becomes an
  /// offender.  2 pairs with SECDED: one stuck bit per codeword is
  /// absorbed forever; the second event on the same row is the signal.
  unsigned retire_threshold = 2;
  /// Fraction of ECC data beats held back as migration spares.
  double spare_fraction = 0.05;
  /// Millivolts per rung-2 voltage raise (capped at nominal).
  int raise_step_mv = 10;
  /// Read back every device write.  SECDED silently miscorrects >= 3-bit
  /// words, so a word that cannot hold its data (stuck cells already
  /// paired up in it) must be caught while the journal still vouches for
  /// it -- not left armed for the next soft upset.
  bool verify_writes = true;
  /// Bulk-operation mechanism (see ChannelEngine).
  ChannelEngine engine = ChannelEngine::kRange;
  /// Per-word ECC codec (mitigate/scheme.hpp maps scheme names to this).
  ecc::WordCodec codec = ecc::WordCodec::kSecded;
};

enum class LadderRung : unsigned {
  kCorrect = 0,
  kRetire = 1,
  kRaiseVoltage = 2,
  kPowerCycle = 3,
  /// Stripe-group action recorded by ServingFleet when a dead PC starts
  /// rebuilding onto a spare pseudo-channel.  escalate() never returns
  /// this: whole-PC loss is beyond any PC-local rung.
  kStripeRebuild = 4,
};

[[nodiscard]] const char* to_string(LadderRung rung) noexcept;

/// Deterministic beat payload for op `op` of PC `pc` -- the data both
/// serve() and the fleet write, and the journal verifies reads against.
[[nodiscard]] hbm::Beat make_payload(std::uint64_t seed, unsigned pc,
                                     std::uint64_t op);

/// One ladder escalation, for replayable traces.
struct LadderEvent {
  LadderRung rung = LadderRung::kCorrect;
  Millivolts voltage{0};  // supply at the moment of the event
  std::uint64_t op = 0;   // channel op count when it fired
};

struct ChannelStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t corrected_words = 0;        // demand reads, data repaired
  std::uint64_t corrected_check_words = 0;  // demand reads, check-byte only
  std::uint64_t uncorrectable_blocked = 0;  // reads refused, never delivered
  std::uint64_t scrub_beats = 0;
  std::uint64_t scrub_corrected = 0;
  std::uint64_t scrub_uncorrectable = 0;
  std::uint64_t scrub_writebacks = 0;
  /// Patrol blocks skipped because a previous pass (or a clean bulk read)
  /// marked them clean.
  std::uint64_t scrub_blocks_skipped = 0;
  std::uint64_t rows_retired = 0;
  std::uint64_t beats_migrated = 0;
  /// Migrations that fell back to the journal copy because the stored
  /// word was uncorrectable even at nominal voltage.
  std::uint64_t journal_migrations = 0;
  /// Beats permanently served from the host journal: uncorrectable at
  /// nominal with the spare pool exhausted (see header comment).
  std::uint64_t beats_parked = 0;
  /// Reads served from the host journal (parked beats): the soak-visible
  /// split between device-served and journal-served traffic.
  std::uint64_t journal_served_reads = 0;
  /// Write-verify read-backs that found the word uncorrectable.
  std::uint64_t verify_caught = 0;
  /// Alarm-driven journal refreshes (see refresh_from_journal).
  std::uint64_t journal_refreshes = 0;
  std::uint64_t retires = 0;       // rung-1 actions completed
  std::uint64_t raises = 0;        // rung-2 actions observed
  std::uint64_t power_cycles = 0;  // rung-3 actions observed
  /// Reads served by XOR reconstruction from stripe peers while this PC's
  /// device was lost (incremented by ServingFleet in stripe mode).
  std::uint64_t reconstructed_reads = 0;
  /// Beats rewritten onto the adopted spare PC by the online rebuild.
  std::uint64_t rebuilt_beats = 0;
};

/// Serial serving report (see serve()).
struct ServeReport {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Reads whose delivered beat mismatched the journal.  The runtime's
  /// headline invariant: always zero.
  std::uint64_t corrupt_reads = 0;
  /// Reads that needed at least one escalate() + retry round.
  std::uint64_t escalated_reads = 0;
};

/// Plain-data snapshot of everything a ReliableChannel needs to resume
/// byte-identically on a fresh board: the logical state (journal, live
/// map, stats, budget, ladder trace) plus every device-keyed structure
/// (remap, spares, parked/row sets, scrub + clean-block scan state, the
/// ECC shadow).  Captured/restored by ServingFleet's checkpoint seam.
struct ChannelCheckpoint {
  unsigned pc_global = 0;  // current silicon (a spare after adoption)
  bool device_lost = false;
  ErrorBudgetState budget;
  std::vector<std::uint32_t> remap;
  std::vector<std::uint32_t> spares;
  std::size_t spare_cursor = 0;
  std::vector<hbm::Beat> journal;
  std::vector<bool> live;
  std::vector<std::uint64_t> parked;
  std::vector<std::uint64_t> special;
  std::vector<std::pair<std::uint64_t, unsigned>> row_events;
  std::vector<std::uint64_t> offender_rows;
  std::vector<std::uint64_t> retired_rows;
  std::uint64_t ops = 0;
  std::uint64_t scrub_cursor = 0;
  bool escalation_pending = false;
  std::vector<bool> clean_blocks;
  std::uint64_t scan_block = 0;
  bool scan_clean = false;
  ChannelStats stats;
  ChannelStats flushed;
  std::vector<LadderEvent> ladder_trace;
  std::vector<std::uint8_t> ecc_shadow;
  ecc::EccStats ecc_stats;
};

class ReliableChannel {
 public:
  /// Patrol clean-block granularity in logical beats: the unit the scrub
  /// cursor can skip when a full pass over it found nothing to repair.
  static constexpr std::uint64_t kScrubBlockBeats = 64;

  ReliableChannel(board::Vcu128Board& board, unsigned pc_global,
                  ReliableChannelConfig config = {});

  /// Fixed logical capacity in beats (never shrinks; see header comment).
  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return remap_.size();
  }
  [[nodiscard]] std::uint64_t spares_free() const noexcept;
  [[nodiscard]] unsigned pc_global() const noexcept { return pc_global_; }
  [[nodiscard]] ChannelEngine engine() const noexcept {
    return config_.engine;
  }

  Status write(std::uint64_t logical, const hbm::Beat& data);

  /// Serves one beat.  kDataLoss means the stored word is currently
  /// uncorrectable: nothing corrupt was delivered, an escalation is
  /// pending, and the caller should escalate() (applying any global
  /// action it requests) and retry.
  Result<hbm::Beat> read(std::uint64_t logical);

  /// Bulk read of [logical, logical + count) into `out`.  Equivalent to
  /// count read() calls in ascending order, except the patrol-scrub cadence
  /// is settled once at the end of the call (k slices for k crossed
  /// intervals) instead of between beats.  On an uncorrectable beat the
  /// call accounts every beat up to and including the failing one, leaves
  /// an escalation pending, and returns kDataLoss (nothing corrupt is
  /// delivered; `out` is unspecified).  Parked beats are served from the
  /// journal; remapped beats through their spare -- both as sparse
  /// exceptions to the plain bulk runs.
  Status read_range(std::uint64_t logical, std::uint64_t count,
                    hbm::Beat* out);

  /// Bulk write of `data` over [logical, logical + count): count write()
  /// calls with the same end-of-call scrub cadence as read_range.
  Status write_range(std::uint64_t logical, std::uint64_t count,
                     const hbm::Beat* data);

  /// Advances the patrol scrubber by `scrub_batch_beats` logical beats
  /// (wrapping), writing corrections back in place.  Called implicitly
  /// every `scrub_interval_ops` foreground ops; callable directly too.
  /// Blocks a previous full pass proved clean are skipped (one skip
  /// consumes the mark, so staleness is bounded to one patrol round).
  Status scrub_slice();

  /// Emergency patrol: scrubs every live beat in one sweep, ignoring
  /// clean-block marks.  escalate() runs this whenever an uncorrectable
  /// word was seen, so a fault storm is mapped out (and retired) in one
  /// ladder action.
  Status patrol_all();

  /// Environmental-alarm response: rewrites every live beat from the
  /// journal with write-verify.  SECDED cannot *read* its way out of a
  /// fault storm -- a word that jumps from one latent upset to three
  /// mismatches decodes as a plausible single-bit fix -- but a rewrite
  /// flushes soft state, and the verify read-back exposes any word whose
  /// stuck cells pair up as a detectable double.  Fleets call this when
  /// the storm hook reports a fault event (in a real deployment: a droop
  /// detector or RAS interrupt).
  Status refresh_from_journal();

  [[nodiscard]] bool escalation_pending() const noexcept {
    return escalation_pending_;
  }

  /// Climbs the ladder as far as PC-local actions reach (rung 1) and
  /// reports what the channel needs next:
  ///   kCorrect      -- handled locally (rows retired and/or budget
  ///                    consumed); retry the op
  ///   kRaiseVoltage -- caller must raise the supply one step, then call
  ///                    on_global_action(kRaiseVoltage)
  ///   kPowerCycle   -- caller must power-cycle the board, then call
  ///                    restore_after_power_cycle() on every channel
  /// Safe to run concurrently with other PCs' channels: every mutation
  /// is PC-local and the board state it reads only changes at barriers.
  Result<LadderRung> escalate();

  /// Bookkeeping after the caller applied a global rung (2).  Resets the
  /// budget window -- the error regime just changed.
  void on_global_action(LadderRung rung);

  /// Rung 3 epilogue: rewrites every live logical beat from the host-side
  /// journal through ECC (the power cycle scrambled the arrays).
  Status restore_after_power_cycle();

  // ---- Whole-device loss (the stripe scheme's fault domain) ----
  // When the backing pseudo-channel dies outright (chaos kPcKill), the
  // channel flips into device-lost mode: writes update only the journal,
  // reads are served from the journal (counted as journal_served_reads
  // unless the fleet reconstructs them from stripe peers first), and the
  // patrol/refresh/restore machinery idles -- there is no device to
  // repair.  In stripe mode ServingFleet then adopts a spare PC and
  // rebuilds onto it through rebuild_device_range.

  /// Marks the backing device unreachable.  Idempotent.
  void set_device_lost() noexcept { device_lost_ = true; }
  [[nodiscard]] bool device_lost() const noexcept { return device_lost_; }

  /// Re-points the channel at a spare pseudo-channel of equal capacity.
  /// The journal, stats, budget, and ladder trace survive -- they describe
  /// the logical channel, not the silicon -- while every device-keyed
  /// structure (remap, spares, parked set, row events, clean-block marks)
  /// resets to the fresh device.  The channel STAYS device-lost until
  /// finish_rebuild(): reads keep coming from the journal (or stripe
  /// reconstruction) while the rebuild backfills the new device.
  void adopt_device(unsigned new_pc_global);

  /// Rebuild step: rewrites the live beats of [logical, logical + count)
  /// onto the (adopted) device from the journal, with write-verify
  /// accounting.  Counted in stats().rebuilt_beats.
  Status rebuild_device_range(std::uint64_t logical, std::uint64_t count);

  /// Rebuild epilogue: the device copy is whole again; resume serving
  /// reads from silicon.
  void finish_rebuild() noexcept { device_lost_ = false; }

  /// Checkpoint seam (see ChannelCheckpoint).  restore() re-points the
  /// channel at the checkpointed silicon (which may be an adopted spare)
  /// and assumes the caller already restored the board: voltage, killed
  /// PCs, burst extras, and raw array words.
  void capture(ChannelCheckpoint* out) const;
  void restore(const ChannelCheckpoint& ck);

  /// Serial convenience driver: replays `trace` (beats taken modulo
  /// capacity), self-checking every read against the journal and applying
  /// the full ladder inline -- including the global rungs, which is only
  /// legal because nothing else is using the board.  Fleets split the
  /// loop instead (see fleet.hpp).
  Result<ServeReport> serve(const workload::AccessTrace& trace,
                            std::uint64_t data_seed = 1);

  /// serve() with run coalescing: maximal stretches of consecutive-beat
  /// same-direction records are served through read_range/write_range, so
  /// streaming traces ride the bulk path.  Identical journal state and
  /// report invariants (corrupt_reads == 0) as serve(); escalation falls
  /// back to the per-op ladder for the affected run.
  Result<ServeReport> serve_trace(const workload::AccessTrace& trace,
                                  std::uint64_t data_seed = 1);

  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ErrorBudget& budget() const noexcept { return budget_; }
  [[nodiscard]] const std::vector<LadderEvent>& ladder_trace() const noexcept {
    return ladder_trace_;
  }
  [[nodiscard]] const ecc::EccChannel& ecc() const noexcept { return *ecc_; }

  /// Journal copy of a logical beat (test/self-check hook); only
  /// meaningful when `journal_live(logical)`.
  [[nodiscard]] const hbm::Beat& journal_beat(std::uint64_t logical) const {
    return journal_[logical];
  }
  [[nodiscard]] bool journal_live(std::uint64_t logical) const {
    return live_.get(logical);
  }
  /// True when the beat is journal-backed (no device copy can serve it).
  [[nodiscard]] bool parked(std::uint64_t logical) const {
    return parked_.contains(logical);
  }
  /// Beats currently served from the journal (the parked set's size).
  [[nodiscard]] std::uint64_t parked_count() const noexcept {
    return parked_.size();
  }
  /// Patrol cursor position in logical beats; capacity() - scrub_cursor()
  /// is the lag of the current pass (health.hpp reports it).
  [[nodiscard]] std::uint64_t scrub_cursor() const noexcept {
    return scrub_cursor_;
  }

  /// Emits the delta of the high-rate counters since the last flush into
  /// the telemetry registry (runtime.* / scrub.*, the per-PC hot counters
  /// as `{pc=N}` families) and merges the channel-local latency
  /// histograms into the latency.read / latency.write HDR families.
  /// Called at sync points rather than per-op to keep the serving path
  /// cheap.
  void flush_telemetry();

 private:
  friend class ServingFleet;

  static constexpr std::uint64_t kNoBlock = ~0ull;

  /// One trace op with journal self-check; read escalations are handled
  /// by apply_ladder_serial (serial mode only).
  Status serve_one(bool write_op, std::uint64_t logical,
                   const hbm::Beat& payload, ServeReport* report);
  /// Applies whatever rung escalate() asks for, including the global
  /// ones -- only legal when nothing else shares the board.
  Status apply_ladder_serial();
  /// Power-cycle + journal restore with a bounded retry: a chaos
  /// spurious crash can land during the cycle's own voltage restore.
  Status cycle_and_restore();

  /// Scrub one logical beat (the special-beat body of the patrol).
  Status scrub_one(std::uint64_t logical);
  /// Scrub [logical, logical + count): splits at exceptions and liveness,
  /// dispatches plain runs to the configured engine, and folds events into
  /// the clean-block scan.
  Status scrub_chunk(std::uint64_t logical, std::uint64_t count);
  /// Plain identity-mapped live run through the engine.
  Status scrub_plain_run(std::uint64_t logical, std::uint64_t count);
  void account_scrub(std::uint64_t physical, unsigned corrected_data,
                     unsigned corrected_check, unsigned uncorrectable,
                     bool wrote_back);

  /// Device-read accounting for one beat; returns false on uncorrectable
  /// (caller must stop and surface kDataLoss).
  bool account_read(std::uint64_t physical, unsigned corrected,
                    unsigned corrected_check, unsigned uncorrectable);
  void account_verify(std::uint64_t physical, unsigned corrected,
                      unsigned corrected_check, unsigned uncorrectable);

  /// Settles the patrol cadence after a bulk call: one slice per
  /// scrub_interval_ops boundary crossed since `ops_before`.
  Status settle_scrub_debt(std::uint64_t ops_before);

  /// Rewrites every live beat from the journal (the refresh/restore body);
  /// with `verify`, read-back accounting matches refresh_from_journal's
  /// per-beat reference (row events + verify_caught, no budget records).
  Status rewrite_live_runs(bool verify);
  Status rewrite_plain_run(std::uint64_t logical, std::uint64_t count,
                           bool verify);

  [[nodiscard]] std::uint64_t block_count() const noexcept {
    return (capacity() + kScrubBlockBeats - 1) / kScrubBlockBeats;
  }
  void invalidate_block(std::uint64_t logical);
  void invalidate_all_blocks();
  /// Marks blocks of [logical, logical + count) wholly inside the range as
  /// clean (a bulk read decoded them with zero events).
  void mark_clean_blocks(std::uint64_t logical, std::uint64_t count);

  [[nodiscard]] std::uint64_t row_key(std::uint64_t physical_beat) const;
  void note_row_events(std::uint64_t physical_beat, unsigned events);
  void record_ladder(LadderRung rung);
  /// Retires every offender row it can, migrating live beats to spares.
  /// With spares exhausted, repairs uncorrectable-at-nominal beats in
  /// place from the journal and parks the ones stuck cells keep broken
  /// (*parked_any).  Sets *blocked when only a voltage raise can recover
  /// a stored word (the row stays an offender for the post-raise retry).
  Status retire_offenders(bool* retired_any, bool* parked_any,
                          bool* blocked);
  [[nodiscard]] Result<std::uint64_t> allocate_spare();
  void park_beat(std::uint64_t logical);
  void remap_beat(std::uint64_t logical, std::uint64_t spare);

  board::Vcu128Board& board_;
  unsigned pc_global_;
  hbm::PcId pc_;
  ReliableChannelConfig config_;
  // unique_ptr so adopt_device can re-point the channel at a spare PC.
  std::unique_ptr<ecc::EccChannel> ecc_;
  ErrorBudget budget_;
  bool device_lost_ = false;

  std::vector<std::uint32_t> remap_;   // logical -> physical ECC data beat
  std::vector<std::uint32_t> spares_;  // ascending physical beats
  std::size_t spare_cursor_ = 0;

  std::vector<hbm::Beat> journal_;  // last written data per logical beat
  BitVec live_;

  // Sparse exception sets over the logical space (flat_index.hpp).
  SortedKeySet parked_;   // journal-backed beats (see header comment)
  SortedKeySet special_;  // parked OR remapped: the range splitter's probe

  RowEventCounts row_events_;
  SortedKeySet offender_rows_;
  SortedKeySet retired_rows_;

  std::uint64_t ops_ = 0;
  std::uint64_t scrub_cursor_ = 0;
  bool escalation_pending_ = false;

  // Clean-block bookkeeping for the patrol skip (policy state, shared by
  // both engines): a block is marked when a contiguous pass over it saw
  // zero scrub events, or a bulk read decoded it entirely clean.
  BitVec clean_blocks_;
  std::uint64_t scan_block_ = kNoBlock;
  bool scan_clean_ = false;

  ChannelStats stats_;
  ChannelStats flushed_;  // counts already exported to telemetry
  // Per-op serve latency, recorded locally (no atomics) only while a
  // Telemetry instance is active, merged + cleared at flush_telemetry().
  telemetry::HdrHistogram read_latency_;
  telemetry::HdrHistogram write_latency_;
  std::vector<LadderEvent> ladder_trace_;

  // Range-engine scratch (high-water reuse, no per-call allocation).
  // trace_beats_ is serve_trace's payload/read buffer -- distinct from
  // scratch_beats_, which write_range's verify pass clobbers.
  std::vector<ecc::EccChannel::RangeBeatEvent> scratch_events_;
  std::vector<hbm::Beat> scratch_beats_;
  std::vector<hbm::Beat> trace_beats_;
};

}  // namespace hbmvolt::runtime
