// Per-PC health snapshots for the serving fleet.
//
// The degradation ladder acts on one channel at a time; an operator (or a
// CI lane) needs the cross-section: which PCs are burning budget, how much
// spare headroom is left, how far the patrol scrubber lags, and what the
// last ladder action was.  HealthRegistry copies that state out of each
// ReliableChannel at the fleet's epoch barrier -- read-only against the
// model, so fingerprints cannot depend on it -- and exports it two ways:
// health.json (machine-readable, uploaded as a CI artifact) and a
// fixed-width console dashboard (HBMVOLT_SOAK_DASHBOARD=1 in
// examples/resilient_serving).  See docs/observability.md.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "runtime/reliable_channel.hpp"
#include "telemetry/alerts.hpp"
#include "telemetry/metrics.hpp"

namespace hbmvolt::runtime {

struct PcHealth {
  unsigned pc = 0;
  int voltage_mv = 0;
  /// Highest rung the channel has climbed to so far (kCorrect = never
  /// escalated) and the channel op count of its latest ladder event.
  LadderRung last_rung = LadderRung::kCorrect;
  std::uint64_t last_rung_op = 0;
  /// Corrected fraction of the current budget window over its SLO
  /// (burn rate 1.0 = exactly on budget), plus completed burns.
  double burn_fraction = 0.0;
  std::uint64_t budget_burns = 0;
  std::uint64_t spares_free = 0;
  std::uint64_t parked_beats = 0;
  /// Logical beats the patrol cursor still has to visit this pass.
  std::uint64_t scrub_lag_beats = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable_blocked = 0;
  std::uint64_t journal_served = 0;
  /// Reads served by stripe XOR reconstruction while the device was lost.
  std::uint64_t reconstructed = 0;
  /// Active mitigation scheme ("secded" / "dected" / "stripe").
  std::string scheme = "secded";
  /// Stripe membership state: "healthy" / "degraded" / "rebuilding", or
  /// "-" when the scheme has no cross-PC stripe.
  std::string stripe = "-";
};

/// One request-plane tenant's health row, published by the plane's
/// fill_health at every barrier (absent unless a RequestSource drives the
/// fleet).  Latencies are model nanoseconds (deterministic service-time
/// model, runtime/fleet.hpp), so slo_ok is reproducible at any thread
/// count.
struct TenantHealth {
  std::string name;
  std::string qos = "best_effort";
  std::string mix = "uniform";
  std::uint64_t demand = 0;
  std::uint64_t admitted = 0;
  std::uint64_t served = 0;  // reads + writes, in beats
  std::uint64_t hedged = 0;
  std::uint64_t stale = 0;
  std::uint64_t shed = 0;           // all shed.* buckets
  std::uint64_t shed_deadline = 0;  // of which: dropped mid-serve
  std::uint64_t retries = 0;
  std::uint64_t surges = 0;
  std::uint64_t p50_model_ns = 0;
  std::uint64_t p99_model_ns = 0;
  std::uint64_t slo_model_ns = 0;
  bool slo_ok = true;
};

class HealthRegistry {
 public:
  void reset(std::size_t pc_count);

  /// Refreshes slot `slot` from the channel (read-only).  Called at epoch
  /// barriers in PC index order.  `scheme` names the fleet's mitigation
  /// scheme; `stripe` is the slot's stripe state ("-" when unstriped).
  void update(std::size_t slot, const ReliableChannel& channel,
              Millivolts voltage, std::uint64_t epoch,
              const char* scheme = "secded", const char* stripe = "-");

  /// Direct slot write -- the golden-test / external-producer seam.
  void set(std::size_t slot, const PcHealth& health);

  /// Replaces the tenant rows wholesale (the request plane rebuilds them
  /// every barrier; empty = no plane attached).
  void set_tenants(std::vector<TenantHealth> tenants);

  [[nodiscard]] const std::vector<PcHealth>& pcs() const noexcept {
    return pcs_;
  }
  [[nodiscard]] const std::vector<TenantHealth>& tenants() const noexcept {
    return tenants_;
  }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// health.json: {"epoch":...,"pcs":[{...}, ...]}, keys in fixed order;
  /// a "tenants" array follows "pcs" when tenant rows are present.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<PcHealth> pcs_;
  std::vector<TenantHealth> tenants_;
  std::uint64_t epoch_ = 0;
};

/// Fixed-width console dashboard: one row per PC, a tenant table with
/// per-tenant QoS/latency rows (when the registry has tenant rows), a
/// fleet latency line (when `metrics` has the latency.* HDR families),
/// and one line per alert rule (when `alerts` is given).  Pure function
/// of its inputs -- the golden test pins the rendering.
[[nodiscard]] std::string render_dashboard(
    const HealthRegistry& health,
    const telemetry::AlertEngine* alerts = nullptr,
    const telemetry::MetricRegistry* metrics = nullptr);

}  // namespace hbmvolt::runtime
