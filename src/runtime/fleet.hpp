// ServingFleet: epoch-based parallel serving over many ReliableChannels,
// under a pluggable mitigation scheme (mitigate/scheme.hpp).
//
// One ReliableChannel per pseudo-channel, one deterministic op stream per
// PC (workload::make_uniform_random over a counter-derived seed), served
// in epochs over the PR-1 thread pool.  The determinism discipline is the
// repo's usual one:
//
//  * workers own disjoint per-PC state (channel, trace cursor, report
//    slot) and never mutate anything global -- a worker that needs a
//    global ladder rung (raise voltage / power-cycle) *requests* it and
//    ends its epoch early;
//  * global actions are applied serially between epochs, in PC index
//    order, at most one voltage raise (or one power-cycle + restore) per
//    barrier;
//  * the run fingerprint folds per-PC results in PC index order, so the
//    whole soak is byte-reproducible from (seed, config) at any thread
//    count (pinned by tests/runtime_test.cpp).
//
// Mitigation schemes.  kSecded and kDected pick the per-word codec and
// fan out per PC exactly as above.  kStripe adds a RAIM-style XOR erasure
// stripe across pseudo-channels: the PC list is carved into groups of
// `stripe_width` serving members plus one parity PC each (leftover PCs
// form the spare pool), every member write also updates the group parity
// channel, and the fan-out unit becomes the *group* so parity writes stay
// worker-local.  When a member's silicon dies outright (chaos kPcKill),
// its channel flips device-lost: reads are served by XOR reconstruction
// from the surviving members plus parity (counted in
// runtime.reconstructed_reads), the barrier adopts a spare PC (recorded
// as LadderRung::kStripeRebuild), and the group worker rebuilds the lost
// data onto it incrementally through the range engine until the device
// copy is whole again.  A second death in the same group degrades to
// journal-backed serving -- still zero corrupt reads, no silicon
// redundancy left.
//
// Chaos fault storms plug in through `storm_hook`, called once per
// (PC, op tick) on the worker -- wire it to ChaosInjector::storm_tick,
// whose decisions are pure in (seed, pc, tick) and whose mutations are
// PC-local, preserving both thread-safety and reproducibility.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "board/vcu128.hpp"
#include "common/status.hpp"
#include "mitigate/scheme.hpp"
#include "runtime/health.hpp"
#include "runtime/reliable_channel.hpp"
#include "telemetry/alerts.hpp"
#include "workload/trace.hpp"

namespace hbmvolt::runtime {

class ServingFleet;

// ---- Request plane seam ----
//
// A RequestSource replaces the fleet's built-in per-PC op streams with an
// externally owned queue of placed requests (src/serve/plane.hpp is the
// multi-tenant implementation).  The determinism split mirrors the rest
// of the fleet: the serial hooks (begin_epoch / end_epoch / fill_health)
// run only at the barrier and may see global state; the worker hooks
// (front / complete / spend_retry) are called from the fan-out and must
// touch only slot-local state for the slot they are handed.

/// Deterministic service-time model, in "model nanoseconds": every path a
/// request can take has a fixed per-beat cost, so per-tenant latency
/// distributions -- and the SLO checks built on them -- are pure
/// functions of the op stream, never of wall clock or thread count.
/// Stripe reconstruction costs kModelDeviceReadNs * (stripe_width + 1)
/// per beat (one fetch per surviving member plus parity); escalation adds
/// kModelEscalateNs per ladder round.
inline constexpr std::uint64_t kModelDeviceReadNs = 800;
inline constexpr std::uint64_t kModelDeviceWriteNs = 1000;
inline constexpr std::uint64_t kModelJournalNs = 400;
inline constexpr std::uint64_t kModelEscalateNs = 5000;

/// How a request left the worker.
enum class ServeOutcome : unsigned {
  kServed = 0,  // device / stripe path, within its deadline
  kHedged = 1,  // deadline pressure: answered from the journal hedge
  kStale = 2,   // brownout: best-effort request served the journal copy
  kShed = 3,    // dropped mid-serve (deadline overrun, best-effort)
};

/// One admitted request, already placed onto a serving slot by the
/// source.  `logical` is a slot-local beat index (< that channel's
/// capacity); `count` is a coalesced same-direction run so streaming
/// tenants keep the range fast path.
struct PlacedRequest {
  std::uint32_t tenant = 0;
  bool write = false;
  /// Brownout flag: a read may be answered from the journal copy without
  /// touching the device (ServeOutcome::kStale).
  bool stale_ok = false;
  /// Guaranteed-class flag: slow device paths (a lost device, stripe
  /// reconstruction, a blown deadline) hedge to the journal copy instead
  /// of paying the slow path (ServeOutcome::kHedged).
  bool hedge = false;
  std::uint64_t logical = 0;
  std::uint64_t count = 1;
  /// Escalation rounds before the deadline is considered blown.
  unsigned deadline_attempts = 4;
};

class RequestSource {
 public:
  virtual ~RequestSource() = default;

  // Serial, called at the barrier before each epoch's fan-out: refill
  // admission quotas, apply brownout policy from the fleet's visible
  // state, and place this epoch's admitted requests onto slot queues.
  virtual void begin_epoch(const ServingFleet& fleet, std::uint64_t epoch) = 0;

  // Worker-side, slot-local.  front() returns the slot's next queued
  // request (nullptr = drained for this epoch) and must keep returning
  // the *same* request until complete() is called -- a worker that parks
  // on a global ladder rung re-serves it after the barrier.
  virtual const PlacedRequest* front(std::size_t slot) = 0;
  virtual void complete(std::size_t slot, const PlacedRequest& request,
                        ServeOutcome outcome, unsigned attempts,
                        std::uint64_t model_ns) = 0;
  /// Spends one unit of the tenant's retry budget from the slot's slice;
  /// false = budget dry (the worker stops escalating and hedges or
  /// sheds).  Bounds retry amplification during fault storms.
  virtual bool spend_retry(std::size_t slot, std::uint32_t tenant) = 0;

  // Serial, called at the barrier after the fan-out, in slot order: fold
  // slot-local accounting into per-tenant totals and fill the sample's
  // admitted / shed deltas for the burn-rate rules.
  virtual void end_epoch(telemetry::EpochSample* sample) = 0;
  /// True once every tenant's demand is fully served or shed and no
  /// queue holds a request.
  [[nodiscard]] virtual bool exhausted() const = 0;
  /// Upper bound on epochs of demand left (the fleet's convergence
  /// bound); may be generous, never an underestimate.
  [[nodiscard]] virtual std::uint64_t epochs_remaining_bound() const = 0;
  /// Publish per-tenant rows into the health registry (serial).
  virtual void fill_health(HealthRegistry* health) const = 0;
  /// Order-stable fold of every per-tenant outcome; folded into the
  /// fleet fingerprint and reported as FleetReport::tenant_fingerprint.
  [[nodiscard]] virtual std::uint64_t fingerprint() const = 0;
};

/// What the epoch hook sees after every barrier: the refreshed health
/// registry and the alert engine (both owned by the fleet and rebuilt
/// serially in PC index order, so observers stay deterministic).
struct EpochStatus {
  std::uint64_t epoch = 0;
  Millivolts voltage{0};
  const HealthRegistry* health = nullptr;
  const telemetry::AlertEngine* alerts = nullptr;
};

struct FleetConfig {
  /// Global PC indices to serve (empty = every PC on the board).  Under
  /// kStripe this is the pool the stripe groups, parity PCs, and spares
  /// are carved from, in order.
  std::vector<unsigned> pcs;
  ReliableChannelConfig channel;
  /// Mitigation scheme; kSecded/kDected override channel.codec, kStripe
  /// additionally builds the cross-PC erasure stripe (see header).
  mitigate::MitigationKind scheme = mitigate::MitigationKind::kSecded;
  /// Serving members per stripe group (kStripe only); each group adds one
  /// parity PC on top.
  unsigned stripe_width = 4;
  /// Live beats a group rebuilds onto an adopted spare per epoch.
  std::uint64_t rebuild_beats_per_epoch = 16;
  /// Stop (with FleetReport::halted) after this many epochs instead of
  /// running to completion; 0 = run to the end.  The checkpoint seam:
  /// halt, checkpoint(), restore() on a fresh board, run() again.
  std::uint64_t halt_after_epochs = 0;
  /// Total foreground ops per PC.
  std::uint64_t ops_per_pc = 1 << 14;
  /// Ops per PC between global barriers.
  std::uint64_t ops_per_epoch = 1024;
  double write_fraction = 0.25;
  /// 0 = uniform-random traffic (ops_per_pc / write_fraction above).
  /// N > 0 = N sequential sweeps over each PC's full capacity instead
  /// (first touch writes, later passes read), the shape that lets the
  /// range engine coalesce -- the perf-gate workload (BM_StripeServe),
  /// directly comparable to ReliableChannel::serve_trace streaming.
  unsigned streaming_passes = 0;
  std::uint64_t seed = 1;
  /// Worker threads (1 = serial reference path, 0 = hardware count).
  unsigned threads = 1;
  /// Optional fault-storm hook, called once per (pc_global, op tick)
  /// before that op is served.  Must be PC-local in its mutations (see
  /// ChaosInjector::storm_tick).  A true return means a fault event
  /// fired on this PC; the fleet responds with an alarm-driven journal
  /// refresh (see ReliableChannel::refresh_from_journal) -- the model
  /// for a droop detector or RAS interrupt in a real deployment.
  std::function<bool(unsigned pc_global, std::uint64_t tick)> storm_hook;
  /// Burn-rate alert rules evaluated at every barrier (empty = defaults
  /// derived from the channel budget: a corrected-rate rule at the budget
  /// SLO, a journal-served-rate rule, and a reconstructed-reads rule).
  /// Deterministic regardless of thread count or telemetry state -- see
  /// telemetry/alerts.hpp.
  std::vector<telemetry::AlertRule> alert_rules;
  /// Called serially after every barrier with the refreshed health
  /// registry and alert engine -- the live-dashboard seam
  /// (examples/resilient_serving renders it under HBMVOLT_SOAK_DASHBOARD).
  /// Must not touch the board or the channels.
  std::function<void(const EpochStatus&)> epoch_hook;
  /// Optional request plane (borrowed; must outlive the fleet).  When
  /// set, the built-in per-PC op streams are replaced by the source's
  /// placed-request queues: begin_epoch admits work at every barrier,
  /// workers drain their slot queues, and end_epoch folds the per-tenant
  /// accounting.  ops_per_epoch then bounds *beats served per slot per
  /// epoch*; ops_per_pc / write_fraction / streaming_passes are ignored.
  /// Incompatible with the checkpoint seam (a source is not captured).
  RequestSource* source = nullptr;
};

struct FleetReport {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Reads whose delivered beat mismatched the journal: always zero (the
  /// headline invariant).
  std::uint64_t corrupt_reads = 0;
  std::uint64_t escalated_reads = 0;
  /// Reads served by XOR reconstruction from stripe peers (kStripe).
  std::uint64_t reconstructed_reads = 0;
  /// Beats rewritten onto adopted spare PCs by online rebuilds.
  std::uint64_t rebuilt_beats = 0;
  std::uint64_t epochs = 0;
  std::uint64_t raises = 0;        // fleet-level rung-2 actions
  std::uint64_t power_cycles = 0;  // fleet-level rung-3 actions
  Millivolts final_voltage{0};
  /// True when the run stopped at halt_after_epochs with work remaining;
  /// fingerprints are only computed on completed runs.
  bool halted = false;
  /// Order-stable fold of every per-PC outcome (reports, channel stats,
  /// ladder traces, journals): equal fingerprints = byte-identical runs.
  std::uint64_t fingerprint = 0;
  /// Fold of the *served data* only (per-slot read/write/corrupt counts
  /// and journal contents) -- invariant across chaos on/off for the same
  /// scheme, unlike `fingerprint`, which also folds ladder traces.
  std::uint64_t data_fingerprint = 0;
  /// RequestSource::fingerprint() at completion (0 without a source):
  /// the per-tenant outcome fold, also mixed into `fingerprint`.
  std::uint64_t tenant_fingerprint = 0;
};

/// Everything needed to resume a halted fleet byte-identically on a fresh
/// board: the board-model state (voltage, killed PCs, weak-cell burst
/// extras, raw array words) plus every channel, slot, and stripe-group
/// checkpoint.  Alert/health observers are deliberately NOT captured --
/// they never feed back into serving, so fingerprints cannot see them.
struct FleetCheckpoint {
  std::uint64_t epochs = 0;
  std::uint64_t raises = 0;
  std::uint64_t power_cycles = 0;
  int voltage_mv = 0;
  std::vector<unsigned> killed_pcs;  // global PC indices
  /// Per global PC: accumulated weak-cell burst extras (sa0, sa1).
  std::vector<std::array<std::uint64_t, 2>> burst_extras;
  /// Per global PC: raw backing-store words (written values, pre-overlay).
  std::vector<std::vector<std::uint64_t>> array_words;
  struct Slot {
    std::uint64_t cursor = 0;
    std::uint64_t storm_next = 0;
    unsigned attempts = 0;
    ServeReport report;
  };
  std::vector<Slot> slots;
  std::vector<ChannelCheckpoint> channels;  // serving slots, slot order
  std::vector<ChannelCheckpoint> parity;    // kStripe: one per group
  struct Group {
    std::size_t rebuilding = ~std::size_t(0);
    bool rebuilding_parity = false;
    std::uint64_t rebuild_cursor = 0;
  };
  std::vector<Group> groups;
  std::size_t spare_next = 0;
};

class ServingFleet {
 public:
  ServingFleet(board::Vcu128Board& board, FleetConfig config);

  /// Serves every PC's full op stream; returns the aggregated report.
  /// With halt_after_epochs set, may instead return early with
  /// report.halted -- call run() again (or checkpoint/restore first) to
  /// continue; progress accumulates across calls.
  Result<FleetReport> run();

  /// Captures the full resumable state (see FleetCheckpoint).  Only
  /// meaningful between run() calls (at a halt barrier).
  [[nodiscard]] FleetCheckpoint checkpoint() const;

  /// Restores a checkpoint onto this fleet and its (fresh) board: replays
  /// voltage, burst extras, PC kills, and raw array words, then every
  /// channel/slot/group state.  The fleet must have been constructed with
  /// the same config as the one that captured the checkpoint.
  Status restore(const FleetCheckpoint& ck);

  [[nodiscard]] mitigate::MitigationKind scheme() const noexcept {
    return config_.scheme;
  }
  /// The resolved config (PC list filled in, scheme codec applied) --
  /// what a RequestSource reads at begin_epoch to derive brownout state.
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t channels() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] const ReliableChannel& channel(std::size_t i) const {
    return *channels_[i];
  }
  /// Stripe groups (0 unless kStripe).
  [[nodiscard]] std::size_t groups() const noexcept { return groups_.size(); }
  [[nodiscard]] const ReliableChannel& parity_channel(std::size_t g) const {
    return *parity_channels_[g];
  }
  [[nodiscard]] std::size_t spares_left() const noexcept {
    return spare_pcs_.size() - spare_next_;
  }
  /// Per-PC health as of the last barrier (empty before run()).
  [[nodiscard]] const HealthRegistry& health() const noexcept {
    return health_;
  }
  /// The burn-rate engine with the full epoch ring and event log.
  [[nodiscard]] const telemetry::AlertEngine& alerts() const noexcept {
    return alerts_;
  }

 private:
  /// Per-PC worker state; owned by exactly one index during a fan-out.
  struct PcState {
    std::uint64_t cursor = 0;      // next trace record to serve
    std::uint64_t storm_next = 0;  // first tick not yet storm-ticked
    unsigned attempts = 0;         // escalation rounds on the current op
    ServeReport report;
    Status status = Status::ok();
    bool wants_global = false;
    LadderRung wanted = LadderRung::kCorrect;
    /// Payload/read buffer for coalesced bulk runs (high-water reuse).
    std::vector<hbm::Beat> beats;
    /// Parity scratch for bulk stripe writes (distinct from `beats`,
    /// which may alias the data being written).
    std::vector<hbm::Beat> pbuf;
  };

  /// One erasure-stripe group: members are serving slots
  /// [group * stripe_width, (group + 1) * stripe_width), plus a dedicated
  /// parity channel and at most one rebuild in flight.
  struct StripeGroup {
    static constexpr std::size_t kIdle = ~std::size_t(0);
    std::size_t rebuilding = kIdle;  // serving-slot index being rebuilt
    bool rebuilding_parity = false;  // the parity channel is the target
    std::uint64_t rebuild_cursor = 0;
    Status status = Status::ok();
    bool wants_global = false;
    LadderRung wanted = LadderRung::kCorrect;
  };

  [[nodiscard]] bool striped() const noexcept {
    return config_.scheme == mitigate::MitigationKind::kStripe;
  }
  [[nodiscard]] std::size_t group_of(std::size_t slot) const noexcept {
    return slot / config_.stripe_width;
  }

  void serve_pc_epoch(std::size_t i);
  /// Request-plane worker: drains slot i's queue from config_.source
  /// instead of the built-in trace (same parking / escalation discipline
  /// as serve_pc_epoch, plus the deadline / hedge / stale QoS paths).
  void serve_pc_source_epoch(std::size_t i);
  /// Runs the storm hook for slot i at its current op tick (at most
  /// once), including the alarm-driven journal refresh.  False = the
  /// epoch must end (a global rung was parked or an error recorded).
  bool storm_tick_slot(std::size_t i);
  /// Stripe fan-out unit: serves every member slot in order, then runs
  /// this epoch's rebuild step.
  void serve_group_epoch(std::size_t g);

  /// Scheme-dispatching op wrappers used by serve_pc_epoch.  In stripe
  /// mode writes also maintain the group parity and reads of a lost
  /// device reconstruct from peers.
  Status do_write(std::size_t i, std::uint64_t logical, const hbm::Beat& data);
  Status do_write_range(std::size_t i, std::uint64_t logical,
                        std::uint64_t count, const hbm::Beat* data);
  Result<hbm::Beat> do_read(std::size_t i, std::uint64_t logical);

  /// XOR of the live member journals at `logical` -- the parity value the
  /// stripe invariant demands (and the rebuild's cross-check).
  [[nodiscard]] hbm::Beat parity_value(std::size_t g,
                                       std::uint64_t logical) const;
  /// Serves a lost member's beat from parity + surviving member silicon.
  Result<hbm::Beat> reconstruct_read(std::size_t i, std::uint64_t logical);
  /// Reads one stripe contributor with local escalation; global needs are
  /// parked on the *member's* state (slot `i`).
  Result<hbm::Beat> stripe_fetch(ReliableChannel& ch, std::uint64_t logical,
                                 PcState& st);
  /// After parity traffic: consume the parity channel's burned budget /
  /// pending escalation, parking global needs on slot `i`'s state.
  Status settle_parity(std::size_t g, PcState& st);

  /// If `ch`'s silicon was chaos-killed, flip it device-lost and return
  /// true (the op retries against the journal/stripe path) -- the prompt
  /// detection path that makes a PC kill cost no power cycle.
  bool absorb_device_loss(ReliableChannel& ch);

  /// Barrier step (serial, group order): adopt a spare PC for at most one
  /// lost channel per idle group and start its rebuild.
  void claim_spares();
  /// Worker-side incremental rebuild of the group's adopted channel.
  void rebuild_step(std::size_t g);

  /// Barrier bookkeeping: epoch deltas -> alert tick, health refresh,
  /// telemetry flush, epoch hook.  Serial, PC index order.
  void close_epoch(std::uint64_t epoch);

  board::Vcu128Board& board_;
  FleetConfig config_;
  std::vector<std::unique_ptr<ReliableChannel>> channels_;
  std::vector<workload::AccessTrace> traces_;
  std::vector<PcState> states_;
  std::vector<ChannelStats> epoch_prev_;  // stats at the previous barrier
  // Stripe state (empty unless kStripe).
  std::vector<std::unique_ptr<ReliableChannel>> parity_channels_;
  std::vector<ChannelStats> parity_prev_;
  std::vector<StripeGroup> groups_;
  std::vector<unsigned> spare_pcs_;  // unclaimed spare pool, global PCs
  std::size_t spare_next_ = 0;
  // Accumulated progress across halted run() calls (checkpoint seam).
  std::uint64_t base_epochs_ = 0;
  std::uint64_t base_raises_ = 0;
  std::uint64_t base_power_cycles_ = 0;
  HealthRegistry health_;
  telemetry::AlertEngine alerts_;
};

}  // namespace hbmvolt::runtime
