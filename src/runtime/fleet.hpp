// ServingFleet: epoch-based parallel serving over many ReliableChannels.
//
// One ReliableChannel per pseudo-channel, one deterministic op stream per
// PC (workload::make_uniform_random over a counter-derived seed), served
// in epochs over the PR-1 thread pool.  The determinism discipline is the
// repo's usual one:
//
//  * workers own disjoint per-PC state (channel, trace cursor, report
//    slot) and never mutate anything global -- a worker that needs a
//    global ladder rung (raise voltage / power-cycle) *requests* it and
//    ends its epoch early;
//  * global actions are applied serially between epochs, in PC index
//    order, at most one voltage raise (or one power-cycle + restore) per
//    barrier;
//  * the run fingerprint folds per-PC results in PC index order, so the
//    whole soak is byte-reproducible from (seed, config) at any thread
//    count (pinned by tests/runtime_test.cpp).
//
// Chaos fault storms plug in through `storm_hook`, called once per
// (PC, op tick) on the worker -- wire it to ChaosInjector::storm_tick,
// whose decisions are pure in (seed, pc, tick) and whose mutations are
// PC-local, preserving both thread-safety and reproducibility.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "board/vcu128.hpp"
#include "common/status.hpp"
#include "runtime/health.hpp"
#include "runtime/reliable_channel.hpp"
#include "telemetry/alerts.hpp"
#include "workload/trace.hpp"

namespace hbmvolt::runtime {

/// What the epoch hook sees after every barrier: the refreshed health
/// registry and the alert engine (both owned by the fleet and rebuilt
/// serially in PC index order, so observers stay deterministic).
struct EpochStatus {
  std::uint64_t epoch = 0;
  Millivolts voltage{0};
  const HealthRegistry* health = nullptr;
  const telemetry::AlertEngine* alerts = nullptr;
};

struct FleetConfig {
  /// Global PC indices to serve (empty = every PC on the board).
  std::vector<unsigned> pcs;
  ReliableChannelConfig channel;
  /// Total foreground ops per PC.
  std::uint64_t ops_per_pc = 1 << 14;
  /// Ops per PC between global barriers.
  std::uint64_t ops_per_epoch = 1024;
  double write_fraction = 0.25;
  std::uint64_t seed = 1;
  /// Worker threads (1 = serial reference path, 0 = hardware count).
  unsigned threads = 1;
  /// Optional fault-storm hook, called once per (pc_global, op tick)
  /// before that op is served.  Must be PC-local in its mutations (see
  /// ChaosInjector::storm_tick).  A true return means a fault event
  /// fired on this PC; the fleet responds with an alarm-driven journal
  /// refresh (see ReliableChannel::refresh_from_journal) -- the model
  /// for a droop detector or RAS interrupt in a real deployment.
  std::function<bool(unsigned pc_global, std::uint64_t tick)> storm_hook;
  /// Burn-rate alert rules evaluated at every barrier (empty = defaults
  /// derived from the channel budget: a corrected-rate rule at the budget
  /// SLO plus a journal-served-rate rule).  Deterministic regardless of
  /// thread count or telemetry state -- see telemetry/alerts.hpp.
  std::vector<telemetry::AlertRule> alert_rules;
  /// Called serially after every barrier with the refreshed health
  /// registry and alert engine -- the live-dashboard seam
  /// (examples/resilient_serving renders it under HBMVOLT_SOAK_DASHBOARD).
  /// Must not touch the board or the channels.
  std::function<void(const EpochStatus&)> epoch_hook;
};

struct FleetReport {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Reads whose delivered beat mismatched the journal: always zero (the
  /// headline invariant).
  std::uint64_t corrupt_reads = 0;
  std::uint64_t escalated_reads = 0;
  std::uint64_t epochs = 0;
  std::uint64_t raises = 0;        // fleet-level rung-2 actions
  std::uint64_t power_cycles = 0;  // fleet-level rung-3 actions
  Millivolts final_voltage{0};
  /// Order-stable fold of every per-PC outcome (reports, channel stats,
  /// ladder traces, journals): equal fingerprints = byte-identical runs.
  std::uint64_t fingerprint = 0;
};

class ServingFleet {
 public:
  ServingFleet(board::Vcu128Board& board, FleetConfig config);

  /// Serves every PC's full op stream; returns the aggregated report.
  Result<FleetReport> run();

  [[nodiscard]] std::size_t channels() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] const ReliableChannel& channel(std::size_t i) const {
    return *channels_[i];
  }
  /// Per-PC health as of the last barrier (empty before run()).
  [[nodiscard]] const HealthRegistry& health() const noexcept {
    return health_;
  }
  /// The burn-rate engine with the full epoch ring and event log.
  [[nodiscard]] const telemetry::AlertEngine& alerts() const noexcept {
    return alerts_;
  }

 private:
  /// Per-PC worker state; owned by exactly one index during a fan-out.
  struct PcState {
    std::uint64_t cursor = 0;      // next trace record to serve
    std::uint64_t storm_next = 0;  // first tick not yet storm-ticked
    unsigned attempts = 0;         // escalation rounds on the current op
    ServeReport report;
    Status status = Status::ok();
    bool wants_global = false;
    LadderRung wanted = LadderRung::kCorrect;
    /// Payload/read buffer for coalesced bulk runs (high-water reuse).
    std::vector<hbm::Beat> beats;
  };

  void serve_pc_epoch(std::size_t i);
  /// Barrier bookkeeping: epoch deltas -> alert tick, health refresh,
  /// telemetry flush, epoch hook.  Serial, PC index order.
  void close_epoch(std::uint64_t epoch);

  board::Vcu128Board& board_;
  FleetConfig config_;
  std::vector<std::unique_ptr<ReliableChannel>> channels_;
  std::vector<workload::AccessTrace> traces_;
  std::vector<PcState> states_;
  std::vector<ChannelStats> epoch_prev_;  // stats at the previous barrier
  HealthRegistry health_;
  telemetry::AlertEngine alerts_;
};

}  // namespace hbmvolt::runtime
