#include "runtime/health.hpp"

#include "common/status.hpp"
#include "common/table.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::runtime {

void HealthRegistry::reset(std::size_t pc_count) {
  pcs_.assign(pc_count, PcHealth{});
  epoch_ = 0;
}

void HealthRegistry::update(std::size_t slot, const ReliableChannel& channel,
                            Millivolts voltage, std::uint64_t epoch,
                            const char* scheme, const char* stripe) {
  HBMVOLT_REQUIRE(slot < pcs_.size(), "health registry slot out of range");
  PcHealth& h = pcs_[slot];
  h.pc = channel.pc_global();
  h.voltage_mv = voltage.value;
  h.last_rung = LadderRung::kCorrect;
  h.last_rung_op = 0;
  for (const LadderEvent& event : channel.ladder_trace()) {
    if (event.rung > h.last_rung) h.last_rung = event.rung;
    h.last_rung_op = event.op;
  }
  const ErrorBudget& budget = channel.budget();
  h.burn_fraction = 0.0;
  if (budget.window_words() > 0 && budget.config().corrected_slo > 0.0) {
    const double fraction = static_cast<double>(budget.window_corrected()) /
                            static_cast<double>(budget.window_words());
    h.burn_fraction = fraction / budget.config().corrected_slo;
  }
  h.budget_burns = budget.burns();
  h.spares_free = channel.spares_free();
  h.parked_beats = channel.parked_count();
  h.scrub_lag_beats = channel.capacity() - channel.scrub_cursor();
  const ChannelStats& stats = channel.stats();
  h.reads = stats.reads;
  h.writes = stats.writes;
  h.corrected = stats.corrected_words + stats.corrected_check_words;
  h.uncorrectable_blocked = stats.uncorrectable_blocked;
  h.journal_served = stats.journal_served_reads;
  h.reconstructed = stats.reconstructed_reads;
  h.scheme = scheme;
  h.stripe = stripe;
  epoch_ = epoch;
}

void HealthRegistry::set(std::size_t slot, const PcHealth& health) {
  HBMVOLT_REQUIRE(slot < pcs_.size(), "health registry slot out of range");
  pcs_[slot] = health;
}

void HealthRegistry::set_tenants(std::vector<TenantHealth> tenants) {
  tenants_ = std::move(tenants);
}

std::string HealthRegistry::to_json() const {
  using telemetry::json_quoted;
  std::string out = "{\"epoch\":" + std::to_string(epoch_) + ",\"pcs\":[\n";
  for (std::size_t i = 0; i < pcs_.size(); ++i) {
    const PcHealth& h = pcs_[i];
    if (i > 0) out += ",\n";
    out += "{\"pc\":" + std::to_string(h.pc) +
           ",\"voltage_mv\":" + std::to_string(h.voltage_mv) +
           ",\"last_rung\":" + json_quoted(to_string(h.last_rung)) +
           ",\"last_rung_op\":" + std::to_string(h.last_rung_op) +
           ",\"burn_fraction\":" + format_double(h.burn_fraction, 3) +
           ",\"budget_burns\":" + std::to_string(h.budget_burns) +
           ",\"spares_free\":" + std::to_string(h.spares_free) +
           ",\"parked_beats\":" + std::to_string(h.parked_beats) +
           ",\"scrub_lag_beats\":" + std::to_string(h.scrub_lag_beats) +
           ",\"reads\":" + std::to_string(h.reads) +
           ",\"writes\":" + std::to_string(h.writes) +
           ",\"corrected\":" + std::to_string(h.corrected) +
           ",\"uncorrectable_blocked\":" +
           std::to_string(h.uncorrectable_blocked) +
           ",\"journal_served\":" + std::to_string(h.journal_served) +
           ",\"reconstructed\":" + std::to_string(h.reconstructed) +
           ",\"scheme\":" + json_quoted(h.scheme) +
           ",\"stripe\":" + json_quoted(h.stripe) + "}";
  }
  out += "\n]";
  if (!tenants_.empty()) {
    out += ",\"tenants\":[\n";
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      const TenantHealth& t = tenants_[i];
      if (i > 0) out += ",\n";
      out += "{\"name\":" + json_quoted(t.name) +
             ",\"qos\":" + json_quoted(t.qos) +
             ",\"mix\":" + json_quoted(t.mix) +
             ",\"demand\":" + std::to_string(t.demand) +
             ",\"admitted\":" + std::to_string(t.admitted) +
             ",\"served\":" + std::to_string(t.served) +
             ",\"hedged\":" + std::to_string(t.hedged) +
             ",\"stale\":" + std::to_string(t.stale) +
             ",\"shed\":" + std::to_string(t.shed) +
             ",\"shed_deadline\":" + std::to_string(t.shed_deadline) +
             ",\"retries\":" + std::to_string(t.retries) +
             ",\"surges\":" + std::to_string(t.surges) +
             ",\"p50_model_ns\":" + std::to_string(t.p50_model_ns) +
             ",\"p99_model_ns\":" + std::to_string(t.p99_model_ns) +
             ",\"slo_model_ns\":" + std::to_string(t.slo_model_ns) +
             ",\"slo_ok\":" + (t.slo_ok ? "true" : "false") + "}";
    }
    out += "\n]";
  }
  out += "}\n";
  return out;
}

std::string render_dashboard(const HealthRegistry& health,
                             const telemetry::AlertEngine* alerts,
                             const telemetry::MetricRegistry* metrics) {
  std::string out =
      "fleet health @ epoch " + std::to_string(health.epoch()) + "\n";

  AsciiTable table;
  table.set_header({"pc", "mV", "scheme", "stripe", "rung", "burn", "burns",
                    "spares", "parked", "scrub-lag", "reads", "corr", "unc",
                    "jrnl", "recon"});
  for (const PcHealth& h : health.pcs()) {
    table.add_row({std::to_string(h.pc), std::to_string(h.voltage_mv),
                   h.scheme, h.stripe, to_string(h.last_rung),
                   format_double(h.burn_fraction, 2),
                   std::to_string(h.budget_burns),
                   std::to_string(h.spares_free),
                   std::to_string(h.parked_beats),
                   std::to_string(h.scrub_lag_beats), std::to_string(h.reads),
                   std::to_string(h.corrected),
                   std::to_string(h.uncorrectable_blocked),
                   std::to_string(h.journal_served),
                   std::to_string(h.reconstructed)});
  }
  out += table.to_string();

  if (!health.tenants().empty()) {
    AsciiTable tenants;
    tenants.set_header({"tenant", "qos", "mix", "demand", "admit", "served",
                        "hedge", "stale", "shed", "p99", "slo", "ok"});
    for (const TenantHealth& t : health.tenants()) {
      tenants.add_row(
          {t.name, t.qos, t.mix, std::to_string(t.demand),
           std::to_string(t.admitted), std::to_string(t.served),
           std::to_string(t.hedged), std::to_string(t.stale),
           std::to_string(t.shed), telemetry::format_duration_ns(t.p99_model_ns),
           telemetry::format_duration_ns(t.slo_model_ns),
           t.slo_ok ? "yes" : "NO"});
    }
    out += tenants.to_string();
  }

  if (metrics != nullptr) {
    for (const auto& family : metrics->hdr_family_values()) {
      if (family.merged.count == 0) continue;
      if (family.name != "latency.read" && family.name != "latency.write") {
        continue;
      }
      out += "latency " + family.name.substr(sizeof("latency.") - 1) +
             "  p50 " + telemetry::format_duration_ns(family.merged.q.p50) +
             "  p99 " + telemetry::format_duration_ns(family.merged.q.p99) +
             "  p999 " + telemetry::format_duration_ns(family.merged.q.p999) +
             "  max " + telemetry::format_duration_ns(family.merged.max) +
             "  (n=" + std::to_string(family.merged.count) + ")\n";
    }
  }

  if (alerts != nullptr) {
    for (const telemetry::AlertRule& rule : alerts->rules()) {
      const double fast = alerts->burn_rate(rule, rule.fast_epochs);
      const double slow = alerts->burn_rate(rule, rule.slow_epochs);
      out += "alert " + rule.name +
             (alerts->firing(rule.name) ? "  FIRING" : "  ok") + " (fast " +
             format_double(fast, 2) + "x / slow " + format_double(slow, 2) +
             "x)\n";
    }
  }
  return out;
}

}  // namespace hbmvolt::runtime
