// Windowed error-budget monitor for the resilient runtime.
//
// SRE-style error budgets applied to memory reliability: the channel is
// allowed a bounded rate of *corrected* words per window (corrections
// cost latency and signal decaying margin) and essentially zero
// *uncorrectable* words (each one is an SLO breach the ladder must act
// on).  The monitor only accounts and judges; acting on a burned budget
// is the degradation ladder's job (see reliable_channel.hpp).

#pragma once

#include <cstdint>

namespace hbmvolt::runtime {

struct ErrorBudgetConfig {
  /// Decoded words per accounting window.
  std::uint64_t window_words = 4096;
  /// Budgeted corrected-word fraction per window; a *complete* window
  /// above this burns the budget.
  double corrected_slo = 0.01;
  /// Uncorrectable words tolerated per window before the budget burns
  /// immediately (no need to wait for the window to fill).
  std::uint64_t uncorrectable_tolerance = 0;
};

enum class BudgetVerdict {
  kHealthy,
  kCorrectedBurn,      // corrected rate over SLO at window completion
  kUncorrectableBurn,  // uncorrectable words over tolerance
};

[[nodiscard]] const char* to_string(BudgetVerdict verdict) noexcept;

/// Plain-data snapshot of a budget's window accounting, for fleet
/// checkpoint/restore (see fleet.hpp).
struct ErrorBudgetState {
  std::uint64_t words = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t windows_completed = 0;
  std::uint64_t burns = 0;
  BudgetVerdict verdict = BudgetVerdict::kHealthy;
};

/// Deterministic windowed accounting.  record() folds one batch of
/// decoded words in and returns the verdict after the batch; a healthy
/// window that fills up rolls over silently.  A burned window stays
/// burned until reset() -- the ladder consumes the burn by acting, then
/// resets.
class ErrorBudget {
 public:
  explicit ErrorBudget(ErrorBudgetConfig config) : config_(config) {}

  BudgetVerdict record(std::uint64_t words, std::uint64_t corrected,
                       std::uint64_t uncorrectable);

  /// Folds `words` clean decoded words in, exactly equivalent to that many
  /// record(1, 0, 0) calls but O(1): the chunk that completes the current
  /// window goes through the normal rate check (the window may still burn
  /// on *previously* accumulated corrections), and the remaining fully
  /// clean windows are fast-forwarded arithmetically.  This is what lets
  /// the range engine account a multi-thousand-beat clean run without a
  /// per-beat loop while staying fingerprint-identical to the per-beat
  /// reference.
  void record_clean(std::uint64_t words);

  /// Consume a burn (or abandon the current window) after a ladder
  /// action; accounting restarts from an empty window.
  void reset();

  [[nodiscard]] BudgetVerdict verdict() const noexcept { return verdict_; }
  [[nodiscard]] bool burned() const noexcept {
    return verdict_ != BudgetVerdict::kHealthy;
  }

  [[nodiscard]] std::uint64_t window_words() const noexcept { return words_; }
  [[nodiscard]] std::uint64_t window_corrected() const noexcept {
    return corrected_;
  }
  [[nodiscard]] std::uint64_t window_uncorrectable() const noexcept {
    return uncorrectable_;
  }
  [[nodiscard]] std::uint64_t windows_completed() const noexcept {
    return windows_completed_;
  }
  [[nodiscard]] std::uint64_t burns() const noexcept { return burns_; }
  [[nodiscard]] const ErrorBudgetConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] ErrorBudgetState state() const noexcept {
    return {words_, corrected_, uncorrectable_, windows_completed_, burns_,
            verdict_};
  }
  void restore(const ErrorBudgetState& state) noexcept {
    words_ = state.words;
    corrected_ = state.corrected;
    uncorrectable_ = state.uncorrectable;
    windows_completed_ = state.windows_completed;
    burns_ = state.burns;
    verdict_ = state.verdict;
  }

 private:
  ErrorBudgetConfig config_;
  std::uint64_t words_ = 0;
  std::uint64_t corrected_ = 0;
  std::uint64_t uncorrectable_ = 0;
  std::uint64_t windows_completed_ = 0;
  std::uint64_t burns_ = 0;
  BudgetVerdict verdict_ = BudgetVerdict::kHealthy;
};

}  // namespace hbmvolt::runtime
