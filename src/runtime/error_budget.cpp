#include "runtime/error_budget.hpp"

namespace hbmvolt::runtime {

const char* to_string(BudgetVerdict verdict) noexcept {
  switch (verdict) {
    case BudgetVerdict::kHealthy:
      return "healthy";
    case BudgetVerdict::kCorrectedBurn:
      return "corrected_burn";
    case BudgetVerdict::kUncorrectableBurn:
      return "uncorrectable_burn";
  }
  return "unknown";
}

BudgetVerdict ErrorBudget::record(std::uint64_t words, std::uint64_t corrected,
                                  std::uint64_t uncorrectable) {
  if (burned()) return verdict_;  // latched until the ladder resets us
  words_ += words;
  corrected_ += corrected;
  uncorrectable_ += uncorrectable;

  if (uncorrectable_ > config_.uncorrectable_tolerance) {
    verdict_ = BudgetVerdict::kUncorrectableBurn;
    ++burns_;
    return verdict_;
  }
  if (words_ >= config_.window_words) {
    const double rate = words_ == 0
                            ? 0.0
                            : static_cast<double>(corrected_) /
                                  static_cast<double>(words_);
    ++windows_completed_;
    if (rate > config_.corrected_slo) {
      verdict_ = BudgetVerdict::kCorrectedBurn;
      ++burns_;
      return verdict_;
    }
    // Healthy window: roll over.
    words_ = 0;
    corrected_ = 0;
    uncorrectable_ = 0;
  }
  return BudgetVerdict::kHealthy;
}

void ErrorBudget::reset() {
  words_ = 0;
  corrected_ = 0;
  uncorrectable_ = 0;
  verdict_ = BudgetVerdict::kHealthy;
}

}  // namespace hbmvolt::runtime
