#include "runtime/error_budget.hpp"

namespace hbmvolt::runtime {

const char* to_string(BudgetVerdict verdict) noexcept {
  switch (verdict) {
    case BudgetVerdict::kHealthy:
      return "healthy";
    case BudgetVerdict::kCorrectedBurn:
      return "corrected_burn";
    case BudgetVerdict::kUncorrectableBurn:
      return "uncorrectable_burn";
  }
  return "unknown";
}

BudgetVerdict ErrorBudget::record(std::uint64_t words, std::uint64_t corrected,
                                  std::uint64_t uncorrectable) {
  if (burned()) return verdict_;  // latched until the ladder resets us
  words_ += words;
  corrected_ += corrected;
  uncorrectable_ += uncorrectable;

  if (uncorrectable_ > config_.uncorrectable_tolerance) {
    verdict_ = BudgetVerdict::kUncorrectableBurn;
    ++burns_;
    return verdict_;
  }
  if (words_ >= config_.window_words) {
    const double rate = words_ == 0
                            ? 0.0
                            : static_cast<double>(corrected_) /
                                  static_cast<double>(words_);
    ++windows_completed_;
    if (rate > config_.corrected_slo) {
      verdict_ = BudgetVerdict::kCorrectedBurn;
      ++burns_;
      return verdict_;
    }
    // Healthy window: roll over.
    words_ = 0;
    corrected_ = 0;
    uncorrectable_ = 0;
  }
  return BudgetVerdict::kHealthy;
}

void ErrorBudget::record_clean(std::uint64_t words) {
  if (burned() || words == 0) return;
  // Complete the in-progress window through the normal path: its verdict
  // depends on corrections recorded before this clean batch.
  const std::uint64_t to_fill = config_.window_words > words_
                                    ? config_.window_words - words_
                                    : 0;
  if (words < to_fill) {
    words_ += words;
    return;
  }
  record(to_fill, 0, 0);
  if (burned()) return;  // latched exactly where the per-word loop would stop
  words -= to_fill;
  // Every remaining window is all-clean, hence healthy: fast-forward.
  if (config_.window_words > 0) {
    windows_completed_ += words / config_.window_words;
    words_ = words % config_.window_words;
  }
}

void ErrorBudget::reset() {
  words_ = 0;
  corrected_ = 0;
  uncorrectable_ = 0;
  verdict_ = BudgetVerdict::kHealthy;
}

}  // namespace hbmvolt::runtime
