#include "runtime/reliable_channel.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::runtime {

const char* to_string(LadderRung rung) noexcept {
  switch (rung) {
    case LadderRung::kCorrect:
      return "correct";
    case LadderRung::kRetire:
      return "retire";
    case LadderRung::kRaiseVoltage:
      return "raise_voltage";
    case LadderRung::kPowerCycle:
      return "power_cycle";
  }
  return "unknown";
}

ReliableChannel::ReliableChannel(board::Vcu128Board& board, unsigned pc_global,
                                 ReliableChannelConfig config)
    : board_(board),
      pc_global_(pc_global),
      pc_(hbm::PcId::from_global(board.geometry(), pc_global)),
      config_(config),
      ecc_(board.stack(pc_.stack), pc_.index),
      budget_(config.budget) {
  HBMVOLT_REQUIRE(pc_global < board.geometry().total_pcs(),
                  "PC index out of range");
  HBMVOLT_REQUIRE(config_.spare_fraction >= 0.0 &&
                      config_.spare_fraction < 1.0,
                  "spare fraction must be in [0, 1)");
  HBMVOLT_REQUIRE(config_.raise_step_mv > 0, "raise step must be positive");

  const std::uint64_t data = ecc_.data_beats();
  std::uint64_t spare_count = static_cast<std::uint64_t>(
      static_cast<double>(data) * config_.spare_fraction);
  if (spare_count >= data) spare_count = data - 1;
  const std::uint64_t exposed = data - spare_count;

  remap_.resize(exposed);
  for (std::uint64_t i = 0; i < exposed; ++i) {
    remap_[i] = static_cast<std::uint32_t>(i);
  }
  spares_.reserve(spare_count);
  for (std::uint64_t i = exposed; i < data; ++i) {
    spares_.push_back(static_cast<std::uint32_t>(i));
  }
  journal_.assign(exposed, hbm::Beat{});
  live_.assign(exposed, false);
  parked_.assign(exposed, false);
}

std::uint64_t ReliableChannel::spares_free() const noexcept {
  return spares_.size() - spare_cursor_;
}

std::uint64_t ReliableChannel::row_key(std::uint64_t physical_beat) const {
  const hbm::HbmGeometry& g = board_.geometry();
  const hbm::BeatLocation loc = hbm::decompose_beat(g, physical_beat);
  return loc.row * g.banks_per_pc + loc.bank;
}

void ReliableChannel::note_row_events(std::uint64_t physical_beat,
                                      unsigned events) {
  if (events == 0) return;
  row_events_[row_key(physical_beat)] += events;
}

void ReliableChannel::record_ladder(LadderRung rung) {
  ladder_trace_.push_back(LadderEvent{rung, board_.hbm_voltage(), ops_});
  HBMVOLT_LOG_INFO("runtime: PC %u ladder %s at %d mV (op %llu)", pc_global_,
                   to_string(rung), board_.hbm_voltage().value,
                   static_cast<unsigned long long>(ops_));
  if (auto* tel = telemetry::Telemetry::active()) {
    switch (rung) {
      case LadderRung::kCorrect:
        break;
      case LadderRung::kRetire:
        tel->count("runtime.ladder.retire");
        break;
      case LadderRung::kRaiseVoltage:
        tel->count("runtime.ladder.raise");
        break;
      case LadderRung::kPowerCycle:
        tel->count("runtime.ladder.power_cycle");
        break;
    }
  }
}

Status ReliableChannel::write(std::uint64_t logical, const hbm::Beat& data) {
  if (logical >= capacity()) {
    return out_of_range("logical beat out of range");
  }
  if (!parked_[logical]) {
    HBMVOLT_RETURN_IF_ERROR(ecc_.write_beat(remap_[logical], data));
    if (config_.verify_writes) {
      // Read-back: a word that cannot hold the data just written (stuck
      // cells already pair up in it) must be caught NOW -- left armed,
      // it is one soft upset away from a SECDED miscorrection.
      auto back = ecc_.read_beat(remap_[logical]);
      if (!back.is_ok()) return back.status();
      note_row_events(remap_[logical], back.value().corrected);
      budget_.record(4, back.value().corrected + back.value().corrected_check,
                     back.value().uncorrectable);
      if (back.value().uncorrectable > 0) {
        ++stats_.verify_caught;
        offender_rows_.insert(row_key(remap_[logical]));
        escalation_pending_ = true;
      }
    }
  }
  journal_[logical] = data;
  live_[logical] = true;
  ++stats_.writes;
  ++ops_;
  if (config_.scrub_interval_ops > 0 &&
      ops_ % config_.scrub_interval_ops == 0) {
    HBMVOLT_RETURN_IF_ERROR(scrub_slice());
  }
  return Status::ok();
}

Result<hbm::Beat> ReliableChannel::read(std::uint64_t logical) {
  if (logical >= capacity()) {
    return out_of_range("logical beat out of range");
  }
  if (parked_[logical]) {
    // Journal-backed: the device copy is unservable (stuck cells paired
    // up with the spare pool exhausted), the host copy is the truth.
    ++stats_.reads;
    ++ops_;
    if (config_.scrub_interval_ops > 0 &&
        ops_ % config_.scrub_interval_ops == 0) {
      HBMVOLT_RETURN_IF_ERROR(scrub_slice());
    }
    return journal_[logical];
  }
  const std::uint64_t physical = remap_[logical];
  auto outcome = ecc_.read_beat(physical);
  if (!outcome.is_ok()) return outcome.status();
  const auto& got = outcome.value();

  ++stats_.reads;
  ++ops_;
  stats_.corrected_words += got.corrected;
  stats_.corrected_check_words += got.corrected_check;
  note_row_events(physical, got.corrected);
  budget_.record(4, got.corrected + got.corrected_check, got.uncorrectable);

  if (got.uncorrectable > 0) {
    // Never deliver a word the code could not vouch for: record the
    // offender and hand the decision to the ladder.
    ++stats_.uncorrectable_blocked;
    offender_rows_.insert(row_key(physical));
    escalation_pending_ = true;
    return data_loss("uncorrectable word on read; escalation required");
  }

  if (config_.scrub_interval_ops > 0 &&
      ops_ % config_.scrub_interval_ops == 0) {
    HBMVOLT_RETURN_IF_ERROR(scrub_slice());
  }
  return got.data;
}

Status ReliableChannel::scrub_one(std::uint64_t logical) {
  // Only live beats carry data the code can vouch for; a never-written
  // beat decodes power-on scramble against zero shadow checks, and a
  // parked beat has no device copy worth patrolling.
  if (!live_[logical] || parked_[logical]) return Status::ok();
  const std::uint64_t physical = remap_[logical];
  auto outcome = ecc_.scrub_beat(physical);
  if (!outcome.is_ok()) return outcome.status();
  const auto& got = outcome.value();
  ++stats_.scrub_beats;
  stats_.scrub_corrected += got.corrected_data + got.corrected_check;
  stats_.scrub_uncorrectable += got.uncorrectable;
  if (got.wrote_back) ++stats_.scrub_writebacks;
  note_row_events(physical, got.corrected_data);
  budget_.record(4, got.corrected_data + got.corrected_check,
                 got.uncorrectable);
  if (got.uncorrectable > 0) {
    // The patrol found a word demand reads would refuse: escalate
    // before a caller trips over it.
    offender_rows_.insert(row_key(physical));
    escalation_pending_ = true;
  }
  return Status::ok();
}

Status ReliableChannel::scrub_slice() {
  const std::uint64_t beats =
      std::min<std::uint64_t>(config_.scrub_batch_beats, capacity());
  for (std::uint64_t i = 0; i < beats; ++i) {
    const std::uint64_t logical = scrub_cursor_;
    scrub_cursor_ = (scrub_cursor_ + 1) % capacity();
    HBMVOLT_RETURN_IF_ERROR(scrub_one(logical));
  }
  return Status::ok();
}

Status ReliableChannel::patrol_all() {
  for (std::uint64_t logical = 0; logical < capacity(); ++logical) {
    HBMVOLT_RETURN_IF_ERROR(scrub_one(logical));
  }
  return Status::ok();
}

Status ReliableChannel::refresh_from_journal() {
  for (std::uint64_t logical = 0; logical < capacity(); ++logical) {
    if (!live_[logical] || parked_[logical]) continue;
    const std::uint64_t physical = remap_[logical];
    HBMVOLT_RETURN_IF_ERROR(ecc_.write_beat(physical, journal_[logical]));
    auto back = ecc_.read_beat(physical);
    if (!back.is_ok()) return back.status();
    note_row_events(physical, back.value().corrected);
    if (back.value().uncorrectable > 0) {
      ++stats_.verify_caught;
      offender_rows_.insert(row_key(physical));
      escalation_pending_ = true;
    }
  }
  ++stats_.journal_refreshes;
  return Status::ok();
}

Result<std::uint64_t> ReliableChannel::allocate_spare() {
  while (spare_cursor_ < spares_.size()) {
    const std::uint64_t beat = spares_[spare_cursor_];
    const std::uint64_t key = row_key(beat);
    // Never migrate onto a retired row, nor onto a row currently being
    // evacuated.  Skipped spares are permanently consumed (cheap, and
    // keeps the cursor deterministic).
    if (retired_rows_.count(key) != 0 || offender_rows_.count(key) != 0) {
      ++spare_cursor_;
      continue;
    }
    return beat;
  }
  return unavailable("spare pool exhausted");
}

Status ReliableChannel::retire_offenders(bool* retired_any, bool* parked_any,
                                         bool* blocked) {
  *retired_any = false;
  *parked_any = false;
  *blocked = false;
  const Millivolts nominal = board_.config().regulator_config.vout_default;
  // Deterministic order regardless of set iteration.
  std::vector<std::uint64_t> rows(offender_rows_.begin(),
                                  offender_rows_.end());
  std::sort(rows.begin(), rows.end());
  for (const std::uint64_t row : rows) {
    bool row_blocked = false;
    bool spares_ran_out = false;
    for (std::uint64_t logical = 0; logical < capacity(); ++logical) {
      if (row_key(remap_[logical]) != row || parked_[logical]) continue;
      auto spare = allocate_spare();
      if (!spare.is_ok()) {
        // Spares exhausted: the row cannot move.  A beat that still
        // decodes is left in place (SECDED keeps serving it); an
        // uncorrectable one is rewritten in place from the journal --
        // which clears soft upsets like bit rot -- and parked on the
        // journal if stuck cells keep it uncorrectable even then.
        spares_ran_out = true;
        if (!live_[logical]) continue;
        auto got = ecc_.read_beat(remap_[logical]);
        if (!got.is_ok()) return got.status();
        if (got.value().uncorrectable == 0) continue;
        if (board_.hbm_voltage() < nominal) {
          // A raise can still shrink the stuck set; climb first.
          row_blocked = true;
          break;
        }
        HBMVOLT_RETURN_IF_ERROR(
            ecc_.write_beat(remap_[logical], journal_[logical]));
        auto again = ecc_.read_beat(remap_[logical]);
        if (!again.is_ok()) return again.status();
        if (again.value().uncorrectable > 0) {
          parked_[logical] = true;
          ++stats_.beats_parked;
        }
        *parked_any = true;
        continue;
      }
      hbm::Beat data{};
      if (live_[logical]) {
        // Migrate through ECC, as real row-repair would: the journal is
        // reserved for last-resort recovery, not steady-state reads.
        auto got = ecc_.read_beat(remap_[logical]);
        if (!got.is_ok()) return got.status();
        if (got.value().uncorrectable > 0) {
          const Millivolts nominal =
              board_.config().regulator_config.vout_default;
          if (board_.hbm_voltage() < nominal) {
            // A voltage raise can still recover the stored word (stuck
            // sets are voltage-keyed); leave the row an offender and let
            // the ladder climb.
            row_blocked = true;
            break;
          }
          // Uncorrectable even at nominal (e.g. a weak-cell burst put two
          // stuck bits in one codeword): no voltage recovers it and a
          // power cycle would just rewrite-and-re-corrupt forever, so
          // fall back to the journal -- the last-written truth.
          data = journal_[logical];
          ++stats_.journal_migrations;
        } else {
          data = got.value().data;
        }
      }
      HBMVOLT_RETURN_IF_ERROR(ecc_.write_beat(spare.value(), data));
      remap_[logical] = static_cast<std::uint32_t>(spare.value());
      ++spare_cursor_;  // commit the allocation
      ++stats_.beats_migrated;
    }
    if (row_blocked) {
      *blocked = true;
      continue;
    }
    if (spares_ran_out) {
      // Handled in place (repairs/parks), not migrated: the row is not
      // retired, but it no longer owes the ladder anything either.
      offender_rows_.erase(row);
      row_events_.erase(row);
      continue;
    }
    retired_rows_.insert(row);
    offender_rows_.erase(row);
    row_events_.erase(row);
    ++stats_.rows_retired;
    *retired_any = true;
  }
  if (*retired_any) ++stats_.retires;
  return Status::ok();
}

Result<LadderRung> ReliableChannel::escalate() {
  if (escalation_pending_) {
    // An uncorrectable word was seen: something (a fault storm, a deep
    // undervolt) is arming codewords faster than the rotating patrol
    // covers them.  Sweep every live beat NOW, so the retirement below
    // handles the whole blast radius in one ladder action -- an armed
    // word left undiscovered is one soft upset away from a SECDED
    // miscorrection.
    HBMVOLT_RETURN_IF_ERROR(patrol_all());
  }
  // Promote rows that crossed the event threshold to offenders.
  for (const auto& [key, events] : row_events_) {
    if (events >= config_.retire_threshold &&
        retired_rows_.count(key) == 0) {
      offender_rows_.insert(key);
    }
  }
  if (!escalation_pending_ && !budget_.burned() && offender_rows_.empty()) {
    return LadderRung::kCorrect;
  }

  bool retired_any = false;
  bool parked_any = false;
  bool blocked = false;
  HBMVOLT_RETURN_IF_ERROR(
      retire_offenders(&retired_any, &parked_any, &blocked));
  const bool absorbed = retired_any || parked_any;
  if (absorbed) record_ladder(LadderRung::kRetire);
  if (absorbed && !blocked) {
    // Rung 1 fully absorbed the escalation (migrations, in-place
    // repairs, and/or parks).
    budget_.reset();
    escalation_pending_ = false;
    return LadderRung::kCorrect;
  }

  const Millivolts nominal = board_.config().regulator_config.vout_default;
  if (blocked || escalation_pending_) {
    // A stored word only a global rung can recover.
    if (board_.hbm_voltage() < nominal) return LadderRung::kRaiseVoltage;
    return LadderRung::kPowerCycle;
  }
  if (budget_.burned() && board_.hbm_voltage() < nominal) {
    // A corrected-rate burn with nothing retirable: shrink the stuck set.
    return LadderRung::kRaiseVoltage;
  }
  // A corrected-rate burn at nominal with nothing left to retire: the
  // SLO is unmeetable at this capacity.  Consume the burn and serve on.
  budget_.reset();
  return LadderRung::kCorrect;
}

void ReliableChannel::on_global_action(LadderRung rung) {
  if (rung == LadderRung::kRaiseVoltage) {
    ++stats_.raises;
    record_ladder(LadderRung::kRaiseVoltage);
  }
  budget_.reset();
  escalation_pending_ = false;
}

Status ReliableChannel::restore_after_power_cycle() {
  for (std::uint64_t logical = 0; logical < capacity(); ++logical) {
    if (!live_[logical] || parked_[logical]) continue;
    HBMVOLT_RETURN_IF_ERROR(
        ecc_.write_beat(remap_[logical], journal_[logical]));
  }
  ++stats_.power_cycles;
  record_ladder(LadderRung::kPowerCycle);
  budget_.reset();
  escalation_pending_ = false;
  return Status::ok();
}

hbm::Beat make_payload(std::uint64_t seed, unsigned pc, std::uint64_t op) {
  hbm::Beat data;
  for (unsigned w = 0; w < 4; ++w) {
    data[w] = splitmix64(stream_seed(seed, pc, op, w));
  }
  return data;
}

Status ReliableChannel::cycle_and_restore() {
  for (unsigned tries = 0;; ++tries) {
    HBMVOLT_RETURN_IF_ERROR(board_.power_cycle());
    const Status restored = restore_after_power_cycle();
    if (restored.is_ok()) return restored;
    if (restored.code() != StatusCode::kUnavailable || tries >= 4) {
      return restored;
    }
    // A chaos crash landed mid-restore; cycle again (cooldown-limited,
    // so this terminates).
  }
}

Status ReliableChannel::serve_one(bool write_op, std::uint64_t logical,
                                  const hbm::Beat& payload,
                                  ServeReport* report) {
  unsigned attempts = 0;
  if (write_op) {
    for (;;) {
      const Status wrote = write(logical, payload);
      if (wrote.is_ok()) break;
      // A crashed stack (e.g. a chaos spurious crash) is rung 3
      // territory: cycle, restore the journal, retry the op.
      if (wrote.code() != StatusCode::kUnavailable || ++attempts > 4) {
        return wrote;
      }
      HBMVOLT_RETURN_IF_ERROR(cycle_and_restore());
    }
    ++report->writes;
    ++report->ops;
    return Status::ok();
  }
  bool escalated = false;
  for (;;) {
    auto got = read(logical);
    if (got.is_ok()) {
      if (got.value() != journal_[logical]) ++report->corrupt_reads;
      break;
    }
    // The full ladder (retire -> raise to nominal -> power-cycle) is
    // bounded: a climb from deep undervolt to nominal is at most a few
    // dozen 10 mV rungs, and everything above it is O(1).
    if (++attempts > 64) return got.status();
    escalated = true;
    if (got.status().code() == StatusCode::kUnavailable) {
      HBMVOLT_RETURN_IF_ERROR(cycle_and_restore());
      continue;
    }
    if (got.status().code() != StatusCode::kDataLoss) return got.status();
    HBMVOLT_RETURN_IF_ERROR(apply_ladder_serial());
  }
  ++report->reads;
  ++report->ops;
  if (escalated) ++report->escalated_reads;
  return Status::ok();
}

Status ReliableChannel::apply_ladder_serial() {
  auto rung = escalate();
  if (!rung.is_ok()) return rung.status();
  switch (rung.value()) {
    case LadderRung::kCorrect:
    case LadderRung::kRetire:
      return Status::ok();
    case LadderRung::kRaiseVoltage: {
      const Millivolts nominal =
          board_.config().regulator_config.vout_default;
      Millivolts next{board_.hbm_voltage().value + config_.raise_step_mv};
      if (next > nominal) next = nominal;
      HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(next));
      on_global_action(LadderRung::kRaiseVoltage);
      return Status::ok();
    }
    case LadderRung::kPowerCycle:
      // The cycle restores nominal voltage; bring the data back.
      return cycle_and_restore();
  }
  return Status::ok();
}

Result<ServeReport> ReliableChannel::serve(const workload::AccessTrace& trace,
                                           std::uint64_t data_seed) {
  ServeReport report;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const workload::TraceRecord& record = trace[i];
    const std::uint64_t logical = record.beat % capacity();
    // First touch of a beat is always a write: the journal is the read
    // self-check's truth, so reads of never-written beats are undefined.
    const bool write_op = record.write || !live_[logical];
    const hbm::Beat payload =
        write_op ? make_payload(data_seed, pc_global_, i) : hbm::Beat{};
    HBMVOLT_RETURN_IF_ERROR(serve_one(write_op, logical, payload, &report));
    // Consume a burned budget between ops, before a read trips on it.
    if (budget_.burned() || escalation_pending_) {
      HBMVOLT_RETURN_IF_ERROR(apply_ladder_serial());
    }
  }
  flush_telemetry();
  return report;
}

void ReliableChannel::flush_telemetry() {
  auto* tel = telemetry::Telemetry::active();
  if (tel == nullptr) {
    flushed_ = stats_;
    return;
  }
  const auto emit = [tel](const char* name, std::uint64_t now,
                          std::uint64_t before) {
    if (now > before) tel->count(name, now - before);
  };
  emit("runtime.reads", stats_.reads, flushed_.reads);
  emit("runtime.writes", stats_.writes, flushed_.writes);
  emit("runtime.corrected_words", stats_.corrected_words,
       flushed_.corrected_words);
  emit("runtime.corrected_check_words", stats_.corrected_check_words,
       flushed_.corrected_check_words);
  emit("runtime.uncorrectable_blocked", stats_.uncorrectable_blocked,
       flushed_.uncorrectable_blocked);
  emit("runtime.rows_retired", stats_.rows_retired, flushed_.rows_retired);
  emit("runtime.beats_migrated", stats_.beats_migrated,
       flushed_.beats_migrated);
  emit("runtime.beats_parked", stats_.beats_parked, flushed_.beats_parked);
  emit("runtime.verify_caught", stats_.verify_caught, flushed_.verify_caught);
  emit("runtime.journal_refreshes", stats_.journal_refreshes,
       flushed_.journal_refreshes);
  emit("scrub.beats", stats_.scrub_beats, flushed_.scrub_beats);
  emit("scrub.corrected", stats_.scrub_corrected, flushed_.scrub_corrected);
  emit("scrub.uncorrectable", stats_.scrub_uncorrectable,
       flushed_.scrub_uncorrectable);
  emit("scrub.writebacks", stats_.scrub_writebacks,
       flushed_.scrub_writebacks);
  tel->gauge_set("runtime.spares_free",
                 static_cast<std::int64_t>(spares_free()));
  flushed_ = stats_;
}

}  // namespace hbmvolt::runtime
