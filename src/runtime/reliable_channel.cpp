#include "runtime/reliable_channel.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::runtime {
namespace {

/// RAII per-op latency probe for the public serve entry points.  With no
/// active Telemetry instance the whole object is one relaxed load and a
/// branch (no clock reads); otherwise it times the call through the
/// instance's Clock seam (ManualClock in tests) and folds `ops` samples
/// of duration/ops into the channel-local histogram -- merged into the
/// shared latency.* families only at flush_telemetry() sync points, so
/// recording never perturbs the parallel soak's fingerprint.
class OpTimer {
 public:
  OpTimer(telemetry::HdrHistogram& sink, std::uint64_t ops) noexcept
      : tel_(telemetry::Telemetry::active()), sink_(sink), ops_(ops) {
    if (tel_ != nullptr) start_ns_ = tel_->clock().now_ns();
  }
  ~OpTimer() {
    if (tel_ == nullptr || ops_ == 0) return;
    const std::uint64_t end = tel_->clock().now_ns();
    const std::uint64_t dur = end >= start_ns_ ? end - start_ns_ : 0;
    sink_.record_n(dur / ops_, ops_);
  }

  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  telemetry::Telemetry* tel_;
  telemetry::HdrHistogram& sink_;
  std::uint64_t ops_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace

const char* to_string(LadderRung rung) noexcept {
  switch (rung) {
    case LadderRung::kCorrect:
      return "correct";
    case LadderRung::kRetire:
      return "retire";
    case LadderRung::kRaiseVoltage:
      return "raise_voltage";
    case LadderRung::kPowerCycle:
      return "power_cycle";
    case LadderRung::kStripeRebuild:
      return "stripe_rebuild";
  }
  return "unknown";
}

ReliableChannel::ReliableChannel(board::Vcu128Board& board, unsigned pc_global,
                                 ReliableChannelConfig config)
    : board_(board),
      pc_global_(pc_global),
      pc_(hbm::PcId::from_global(board.geometry(), pc_global)),
      config_(config),
      ecc_(std::make_unique<ecc::EccChannel>(board.stack(pc_.stack),
                                             pc_.index, config.codec)),
      budget_(config.budget) {
  HBMVOLT_REQUIRE(pc_global < board.geometry().total_pcs(),
                  "PC index out of range");
  HBMVOLT_REQUIRE(config_.spare_fraction >= 0.0 &&
                      config_.spare_fraction < 1.0,
                  "spare fraction must be in [0, 1)");
  HBMVOLT_REQUIRE(config_.raise_step_mv > 0, "raise step must be positive");

  const std::uint64_t data = ecc_->data_beats();
  std::uint64_t spare_count = static_cast<std::uint64_t>(
      static_cast<double>(data) * config_.spare_fraction);
  if (spare_count >= data) spare_count = data - 1;
  const std::uint64_t exposed = data - spare_count;

  remap_.resize(exposed);
  for (std::uint64_t i = 0; i < exposed; ++i) {
    remap_[i] = static_cast<std::uint32_t>(i);
  }
  spares_.reserve(spare_count);
  for (std::uint64_t i = exposed; i < data; ++i) {
    spares_.push_back(static_cast<std::uint32_t>(i));
  }
  journal_.assign(exposed, hbm::Beat{});
  live_.assign(exposed, false);
  clean_blocks_.assign(block_count(), false);
}

std::uint64_t ReliableChannel::spares_free() const noexcept {
  return spares_.size() - spare_cursor_;
}

std::uint64_t ReliableChannel::row_key(std::uint64_t physical_beat) const {
  const hbm::HbmGeometry& g = board_.geometry();
  const hbm::BeatLocation loc = hbm::decompose_beat(g, physical_beat);
  return loc.row * g.banks_per_pc + loc.bank;
}

void ReliableChannel::note_row_events(std::uint64_t physical_beat,
                                      unsigned events) {
  if (events == 0) return;
  row_events_.add(row_key(physical_beat), events);
}

void ReliableChannel::record_ladder(LadderRung rung) {
  ladder_trace_.push_back(LadderEvent{rung, board_.hbm_voltage(), ops_});
  HBMVOLT_LOG_INFO("runtime: PC %u ladder %s at %d mV (op %llu)", pc_global_,
                   to_string(rung), board_.hbm_voltage().value,
                   static_cast<unsigned long long>(ops_));
  if (auto* tel = telemetry::Telemetry::active()) {
    switch (rung) {
      case LadderRung::kCorrect:
        break;
      case LadderRung::kRetire:
        tel->count("runtime.ladder.retire");
        break;
      case LadderRung::kRaiseVoltage:
        tel->count("runtime.ladder.raise");
        break;
      case LadderRung::kPowerCycle:
        tel->count("runtime.ladder.power_cycle");
        break;
      case LadderRung::kStripeRebuild:
        tel->count("runtime.ladder.stripe_rebuild");
        break;
    }
  }
}

// ---- Clean-block bookkeeping (policy state shared by both engines) ----

void ReliableChannel::invalidate_block(std::uint64_t logical) {
  const std::uint64_t block = logical / kScrubBlockBeats;
  clean_blocks_.clear(block);
  // A write landing in the block the patrol is mid-scan through makes the
  // scan's verdict stale.
  if (scan_block_ == block) scan_clean_ = false;
}

void ReliableChannel::invalidate_all_blocks() {
  clean_blocks_.clear_all();
  scan_block_ = kNoBlock;
  scan_clean_ = false;
}

void ReliableChannel::mark_clean_blocks(std::uint64_t logical,
                                        std::uint64_t count) {
  const std::uint64_t end = logical + count;
  // Only blocks wholly inside [logical, end) were proven clean.
  std::uint64_t block = (logical + kScrubBlockBeats - 1) / kScrubBlockBeats;
  for (;; ++block) {
    const std::uint64_t block_start = block * kScrubBlockBeats;
    if (block_start >= capacity()) break;
    const std::uint64_t block_end =
        std::min(block_start + kScrubBlockBeats, capacity());
    if (block_end > end) break;
    clean_blocks_.set(block);
  }
}

// ---- Per-beat accounting bodies (the policy both engines execute) ----

bool ReliableChannel::account_read(std::uint64_t physical, unsigned corrected,
                                   unsigned corrected_check,
                                   unsigned uncorrectable) {
  ++stats_.reads;
  ++ops_;
  stats_.corrected_words += corrected;
  stats_.corrected_check_words += corrected_check;
  note_row_events(physical, corrected);
  budget_.record(4, corrected + corrected_check, uncorrectable);
  if (uncorrectable > 0) {
    // Never deliver a word the code could not vouch for: record the
    // offender and hand the decision to the ladder.
    ++stats_.uncorrectable_blocked;
    offender_rows_.insert(row_key(physical));
    escalation_pending_ = true;
    return false;
  }
  return true;
}

void ReliableChannel::account_verify(std::uint64_t physical, unsigned corrected,
                                     unsigned corrected_check,
                                     unsigned uncorrectable) {
  note_row_events(physical, corrected);
  budget_.record(4, corrected + corrected_check, uncorrectable);
  if (uncorrectable > 0) {
    ++stats_.verify_caught;
    offender_rows_.insert(row_key(physical));
    escalation_pending_ = true;
  }
}

void ReliableChannel::account_scrub(std::uint64_t physical,
                                    unsigned corrected_data,
                                    unsigned corrected_check,
                                    unsigned uncorrectable, bool wrote_back) {
  ++stats_.scrub_beats;
  stats_.scrub_corrected += corrected_data + corrected_check;
  stats_.scrub_uncorrectable += uncorrectable;
  if (wrote_back) ++stats_.scrub_writebacks;
  note_row_events(physical, corrected_data);
  budget_.record(4, corrected_data + corrected_check, uncorrectable);
  if (uncorrectable > 0) {
    // The patrol found a word demand reads would refuse: escalate
    // before a caller trips over it.
    offender_rows_.insert(row_key(physical));
    escalation_pending_ = true;
  }
  if (corrected_data + corrected_check + uncorrectable > 0 || wrote_back) {
    scan_clean_ = false;
  }
}

Status ReliableChannel::settle_scrub_debt(std::uint64_t ops_before) {
  if (config_.scrub_interval_ops == 0) return Status::ok();
  const std::uint64_t k = ops_ / config_.scrub_interval_ops -
                          ops_before / config_.scrub_interval_ops;
  for (std::uint64_t i = 0; i < k; ++i) {
    HBMVOLT_RETURN_IF_ERROR(scrub_slice());
  }
  return Status::ok();
}

// ---- Single-beat demand path ----

Status ReliableChannel::write(std::uint64_t logical, const hbm::Beat& data) {
  if (logical >= capacity()) {
    return out_of_range("logical beat out of range");
  }
  OpTimer timer(write_latency_, 1);
  // With the device lost the journal is the only copy; the stripe fleet
  // (or a rebuild step) propagates the write to parity/spare silicon.
  if (!device_lost_ && !parked_.contains(logical)) {
    HBMVOLT_RETURN_IF_ERROR(ecc_->write_beat(remap_[logical], data));
    if (config_.verify_writes) {
      // Read-back: a word that cannot hold the data just written (stuck
      // cells already pair up in it) must be caught NOW -- left armed,
      // it is one soft upset away from a SECDED miscorrection.
      auto back = ecc_->read_beat(remap_[logical]);
      if (!back.is_ok()) return back.status();
      account_verify(remap_[logical], back.value().corrected,
                     back.value().corrected_check,
                     back.value().uncorrectable);
    }
  }
  journal_[logical] = data;
  live_.set(logical);
  ++stats_.writes;
  ++ops_;
  invalidate_block(logical);
  if (config_.scrub_interval_ops > 0 &&
      ops_ % config_.scrub_interval_ops == 0) {
    HBMVOLT_RETURN_IF_ERROR(scrub_slice());
  }
  return Status::ok();
}

Result<hbm::Beat> ReliableChannel::read(std::uint64_t logical) {
  if (logical >= capacity()) {
    return out_of_range("logical beat out of range");
  }
  OpTimer timer(read_latency_, 1);
  if (device_lost_ || parked_.contains(logical)) {
    // Journal-backed: the device copy is unservable (whole-PC death, or
    // stuck cells paired up with the spare pool exhausted), the host
    // copy is the truth.
    ++stats_.reads;
    ++ops_;
    ++stats_.journal_served_reads;
    if (config_.scrub_interval_ops > 0 &&
        ops_ % config_.scrub_interval_ops == 0) {
      HBMVOLT_RETURN_IF_ERROR(scrub_slice());
    }
    return journal_[logical];
  }
  const std::uint64_t physical = remap_[logical];
  auto outcome = ecc_->read_beat(physical);
  if (!outcome.is_ok()) return outcome.status();
  const auto& got = outcome.value();
  if (!account_read(physical, got.corrected, got.corrected_check,
                    got.uncorrectable)) {
    return data_loss("uncorrectable word on read; escalation required");
  }
  if (config_.scrub_interval_ops > 0 &&
      ops_ % config_.scrub_interval_ops == 0) {
    HBMVOLT_RETURN_IF_ERROR(scrub_slice());
  }
  return got.data;
}

// ---- Bulk demand path ----

Status ReliableChannel::read_range(std::uint64_t logical, std::uint64_t count,
                                   hbm::Beat* out) {
  if (count == 0) return Status::ok();
  if (logical >= capacity() || count > capacity() - logical) {
    return out_of_range("logical beat range out of range");
  }
  OpTimer timer(read_latency_, count);
  const std::uint64_t end = logical + count;
  const std::uint64_t ops_before = ops_;
  if (device_lost_) {
    for (std::uint64_t cur = logical; cur < end; ++cur) {
      out[cur - logical] = journal_[cur];
      ++stats_.reads;
      ++ops_;
      ++stats_.journal_served_reads;
    }
    return settle_scrub_debt(ops_before);
  }
  const bool plain_call = !special_.any_in_range(logical, end);
  bool all_clean = true;
  std::uint64_t cur = logical;
  while (cur < end) {
    const std::uint64_t special = special_.first_in_range(cur, end);
    const std::uint64_t plain_end =
        special == SortedKeySet::kNone ? end : special;
    if (cur < plain_end) {
      // Plain run: identity-mapped, not parked (specials capture both).
      if (config_.engine == ChannelEngine::kPerBeat) {
        for (; cur < plain_end; ++cur) {
          const std::uint64_t physical = remap_[cur];
          auto outcome = ecc_->read_beat(physical);
          if (!outcome.is_ok()) return outcome.status();
          const auto& got = outcome.value();
          out[cur - logical] = got.data;
          if (got.corrected + got.corrected_check + got.uncorrectable > 0) {
            all_clean = false;
          }
          if (!account_read(physical, got.corrected, got.corrected_check,
                            got.uncorrectable)) {
            return data_loss(
                "uncorrectable word on read; escalation required");
          }
        }
      } else {
        const std::uint64_t n = plain_end - cur;
        scratch_events_.clear();
        HBMVOLT_RETURN_IF_ERROR(
            ecc_->decode_range(cur, n, out + (cur - logical), scratch_events_));
        std::uint64_t clean_from = cur;
        for (const auto& ev : scratch_events_) {
          all_clean = false;
          if (ev.beat > clean_from) {
            const std::uint64_t k = ev.beat - clean_from;
            stats_.reads += k;
            ops_ += k;
            budget_.record_clean(4 * k);
          }
          if (!account_read(ev.beat, ev.corrected, ev.corrected_check,
                            ev.uncorrectable)) {
            // Beats past the failing one were decoded but are not
            // accounted -- exactly where the per-beat reference stops.
            return data_loss(
                "uncorrectable word on read; escalation required");
          }
          clean_from = ev.beat + 1;
        }
        if (plain_end > clean_from) {
          const std::uint64_t k = plain_end - clean_from;
          stats_.reads += k;
          ops_ += k;
          budget_.record_clean(4 * k);
        }
        cur = plain_end;
      }
    }
    if (special != SortedKeySet::kNone) {
      if (parked_.contains(cur)) {
        out[cur - logical] = journal_[cur];
        ++stats_.reads;
        ++ops_;
        ++stats_.journal_served_reads;
      } else {
        const std::uint64_t physical = remap_[cur];
        auto outcome = ecc_->read_beat(physical);
        if (!outcome.is_ok()) return outcome.status();
        const auto& got = outcome.value();
        out[cur - logical] = got.data;
        if (got.corrected + got.corrected_check + got.uncorrectable > 0) {
          all_clean = false;
        }
        if (!account_read(physical, got.corrected, got.corrected_check,
                          got.uncorrectable)) {
          return data_loss("uncorrectable word on read; escalation required");
        }
      }
      ++cur;
    }
  }
  // A clean pass over identity-mapped beats is exactly what the patrol
  // would have established: let the scrub cursor skip these blocks once.
  if (plain_call && all_clean) mark_clean_blocks(logical, count);
  return settle_scrub_debt(ops_before);
}

Status ReliableChannel::write_range(std::uint64_t logical, std::uint64_t count,
                                    const hbm::Beat* data) {
  if (count == 0) return Status::ok();
  if (logical >= capacity() || count > capacity() - logical) {
    return out_of_range("logical beat range out of range");
  }
  OpTimer timer(write_latency_, count);
  const std::uint64_t end = logical + count;
  const std::uint64_t ops_before = ops_;
  if (device_lost_) {
    std::copy(data, data + count,
              journal_.begin() + static_cast<long>(logical));
    for (std::uint64_t i = 0; i < count; ++i) live_.set(logical + i);
    stats_.writes += count;
    ops_ += count;
    return settle_scrub_debt(ops_before);
  }
  std::uint64_t cur = logical;
  while (cur < end) {
    const std::uint64_t special = special_.first_in_range(cur, end);
    const std::uint64_t plain_end =
        special == SortedKeySet::kNone ? end : special;
    if (cur < plain_end) {
      const std::uint64_t n = plain_end - cur;
      const hbm::Beat* src = data + (cur - logical);
      if (config_.engine == ChannelEngine::kPerBeat) {
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::uint64_t beat = cur + i;
          HBMVOLT_RETURN_IF_ERROR(ecc_->write_beat(beat, src[i]));
          if (config_.verify_writes) {
            auto back = ecc_->read_beat(beat);
            if (!back.is_ok()) return back.status();
            account_verify(beat, back.value().corrected,
                           back.value().corrected_check,
                           back.value().uncorrectable);
          }
        }
      } else {
        HBMVOLT_RETURN_IF_ERROR(ecc_->encode_range(cur, n, src));
        if (config_.verify_writes) {
          scratch_beats_.resize(n);
          scratch_events_.clear();
          HBMVOLT_RETURN_IF_ERROR(ecc_->decode_range(
              cur, n, scratch_beats_.data(), scratch_events_));
          std::uint64_t clean_from = cur;
          for (const auto& ev : scratch_events_) {
            if (ev.beat > clean_from) {
              budget_.record_clean(4 * (ev.beat - clean_from));
            }
            account_verify(ev.beat, ev.corrected, ev.corrected_check,
                           ev.uncorrectable);
            clean_from = ev.beat + 1;
          }
          if (plain_end > clean_from) {
            budget_.record_clean(4 * (plain_end - clean_from));
          }
        }
      }
      std::copy(src, src + n, journal_.begin() + static_cast<long>(cur));
      for (std::uint64_t i = 0; i < n; ++i) live_.set(cur + i);
      stats_.writes += n;
      ops_ += n;
      cur = plain_end;
    }
    if (special != SortedKeySet::kNone) {
      const hbm::Beat& beat_data = data[cur - logical];
      if (!parked_.contains(cur)) {
        const std::uint64_t physical = remap_[cur];
        HBMVOLT_RETURN_IF_ERROR(ecc_->write_beat(physical, beat_data));
        if (config_.verify_writes) {
          auto back = ecc_->read_beat(physical);
          if (!back.is_ok()) return back.status();
          account_verify(physical, back.value().corrected,
                         back.value().corrected_check,
                         back.value().uncorrectable);
        }
      }
      journal_[cur] = beat_data;
      live_.set(cur);
      ++stats_.writes;
      ++ops_;
      ++cur;
    }
  }
  for (std::uint64_t block = logical / kScrubBlockBeats;
       block * kScrubBlockBeats < end; ++block) {
    invalidate_block(block * kScrubBlockBeats);
  }
  return settle_scrub_debt(ops_before);
}

// ---- Patrol scrub ----

Status ReliableChannel::scrub_one(std::uint64_t logical) {
  // Only live beats carry data the code can vouch for; a never-written
  // beat decodes power-on scramble against zero shadow checks, and a
  // parked beat has no device copy worth patrolling.
  if (!live_.get(logical) || parked_.contains(logical)) return Status::ok();
  const std::uint64_t physical = remap_[logical];
  auto outcome = ecc_->scrub_beat(physical);
  if (!outcome.is_ok()) return outcome.status();
  const auto& got = outcome.value();
  account_scrub(physical, got.corrected_data, got.corrected_check,
                got.uncorrectable, got.wrote_back);
  return Status::ok();
}

Status ReliableChannel::scrub_plain_run(std::uint64_t logical,
                                        std::uint64_t count) {
  if (config_.engine == ChannelEngine::kPerBeat) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t beat = logical + i;
      auto outcome = ecc_->scrub_beat(beat);
      if (!outcome.is_ok()) return outcome.status();
      const auto& got = outcome.value();
      account_scrub(beat, got.corrected_data, got.corrected_check,
                    got.uncorrectable, got.wrote_back);
    }
    return Status::ok();
  }
  scratch_events_.clear();
  HBMVOLT_RETURN_IF_ERROR(ecc_->scrub_range(logical, count, scratch_events_));
  std::uint64_t clean_from = logical;
  for (const auto& ev : scratch_events_) {
    if (ev.beat > clean_from) {
      const std::uint64_t n = ev.beat - clean_from;
      stats_.scrub_beats += n;
      budget_.record_clean(4 * n);
    }
    account_scrub(ev.beat, ev.corrected, ev.corrected_check, ev.uncorrectable,
                  ev.wrote_back);
    clean_from = ev.beat + 1;
  }
  if (logical + count > clean_from) {
    const std::uint64_t n = logical + count - clean_from;
    stats_.scrub_beats += n;
    budget_.record_clean(4 * n);
  }
  return Status::ok();
}

Status ReliableChannel::scrub_chunk(std::uint64_t logical,
                                    std::uint64_t count) {
  std::uint64_t cur = logical;
  const std::uint64_t end = logical + count;
  while (cur < end) {
    const std::uint64_t special = special_.first_in_range(cur, end);
    const std::uint64_t plain_end =
        special == SortedKeySet::kNone ? end : special;
    // Plain stretch: split into live runs; dead beats cost a word scan.
    while (cur < plain_end) {
      if (!live_.get(cur)) {
        const std::uint64_t next = live_.next_set(cur);
        cur = (next == BitVec::kNone || next > plain_end) ? plain_end : next;
        continue;
      }
      std::uint64_t run_end = live_.next_clear(cur);
      if (run_end == BitVec::kNone || run_end > plain_end) {
        run_end = plain_end;
      }
      HBMVOLT_RETURN_IF_ERROR(scrub_plain_run(cur, run_end - cur));
      cur = run_end;
    }
    if (special != SortedKeySet::kNone) {
      HBMVOLT_RETURN_IF_ERROR(scrub_one(cur));
      ++cur;
    }
  }
  return Status::ok();
}

Status ReliableChannel::scrub_slice() {
  if (device_lost_) return Status::ok();  // no silicon to patrol
  const std::uint64_t cap = capacity();
  std::uint64_t remaining =
      std::min<std::uint64_t>(config_.scrub_batch_beats, cap);
  const std::uint64_t nblocks = block_count();
  std::uint64_t skips = 0;
  while (remaining > 0) {
    const std::uint64_t block = scrub_cursor_ / kScrubBlockBeats;
    const std::uint64_t block_start = block * kScrubBlockBeats;
    const std::uint64_t block_end =
        std::min(block_start + kScrubBlockBeats, cap);
    if (scrub_cursor_ == block_start && clean_blocks_.get(block)) {
      // One skip consumes the mark, so staleness is bounded to a round.
      clean_blocks_.clear(block);
      ++stats_.scrub_blocks_skipped;
      scrub_cursor_ = block_end % cap;
      scan_block_ = kNoBlock;
      // Everything marked clean this round: don't spin through the whole
      // map again within one slice.
      if (++skips > nblocks) break;
      continue;
    }
    const std::uint64_t chunk = std::min(block_end - scrub_cursor_, remaining);
    if (scrub_cursor_ == block_start) {
      scan_block_ = block;
      scan_clean_ = true;
    } else if (scan_block_ != block) {
      // Mid-block entry with no scan in flight: this pass cannot prove
      // the block clean.
      scan_block_ = kNoBlock;
    }
    const std::uint64_t lo = scrub_cursor_;
    HBMVOLT_RETURN_IF_ERROR(scrub_chunk(lo, chunk));
    scrub_cursor_ = (lo + chunk) % cap;
    remaining -= chunk;
    if (scan_block_ == block && lo + chunk == block_end) {
      if (scan_clean_) clean_blocks_.set(block);
      scan_block_ = kNoBlock;
    }
  }
  return Status::ok();
}

Status ReliableChannel::patrol_all() {
  if (device_lost_) return Status::ok();  // no silicon to patrol
  // Emergency sweep: trust nothing, re-prove every block.
  invalidate_all_blocks();
  const std::uint64_t cap = capacity();
  for (std::uint64_t start = 0; start < cap; start += kScrubBlockBeats) {
    const std::uint64_t end = std::min(start + kScrubBlockBeats, cap);
    scan_block_ = start / kScrubBlockBeats;
    scan_clean_ = true;
    HBMVOLT_RETURN_IF_ERROR(scrub_chunk(start, end - start));
    if (scan_clean_) clean_blocks_.set(scan_block_);
    scan_block_ = kNoBlock;
  }
  return Status::ok();
}

// ---- Journal rewrite (refresh / post-power-cycle restore) ----

Status ReliableChannel::rewrite_plain_run(std::uint64_t logical,
                                          std::uint64_t count, bool verify) {
  if (config_.engine == ChannelEngine::kPerBeat) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t beat = logical + i;
      HBMVOLT_RETURN_IF_ERROR(ecc_->write_beat(beat, journal_[beat]));
      if (!verify) continue;
      auto back = ecc_->read_beat(beat);
      if (!back.is_ok()) return back.status();
      note_row_events(beat, back.value().corrected);
      if (back.value().uncorrectable > 0) {
        ++stats_.verify_caught;
        offender_rows_.insert(row_key(beat));
        escalation_pending_ = true;
      }
    }
    return Status::ok();
  }
  // Plain live run: journal_ is contiguous over it, feed it straight in.
  HBMVOLT_RETURN_IF_ERROR(ecc_->encode_range(logical, count, &journal_[logical]));
  if (!verify) return Status::ok();
  scratch_beats_.resize(count);
  scratch_events_.clear();
  HBMVOLT_RETURN_IF_ERROR(
      ecc_->decode_range(logical, count, scratch_beats_.data(), scratch_events_));
  for (const auto& ev : scratch_events_) {
    note_row_events(ev.beat, ev.corrected);
    if (ev.uncorrectable > 0) {
      ++stats_.verify_caught;
      offender_rows_.insert(row_key(ev.beat));
      escalation_pending_ = true;
    }
  }
  return Status::ok();
}

Status ReliableChannel::rewrite_live_runs(bool verify) {
  const std::uint64_t cap = capacity();
  std::uint64_t cur = 0;
  while (cur < cap) {
    if (!live_.get(cur)) {
      const std::uint64_t next = live_.next_set(cur);
      if (next == BitVec::kNone) break;
      cur = next;
      continue;
    }
    std::uint64_t run_end = live_.next_clear(cur);
    if (run_end == BitVec::kNone || run_end > cap) run_end = cap;
    while (cur < run_end) {
      const std::uint64_t special = special_.first_in_range(cur, run_end);
      const std::uint64_t plain_end =
          special == SortedKeySet::kNone ? run_end : special;
      if (cur < plain_end) {
        HBMVOLT_RETURN_IF_ERROR(
            rewrite_plain_run(cur, plain_end - cur, verify));
        cur = plain_end;
      }
      if (special != SortedKeySet::kNone) {
        if (!parked_.contains(cur)) {
          const std::uint64_t physical = remap_[cur];
          HBMVOLT_RETURN_IF_ERROR(ecc_->write_beat(physical, journal_[cur]));
          if (verify) {
            auto back = ecc_->read_beat(physical);
            if (!back.is_ok()) return back.status();
            note_row_events(physical, back.value().corrected);
            if (back.value().uncorrectable > 0) {
              ++stats_.verify_caught;
              offender_rows_.insert(row_key(physical));
              escalation_pending_ = true;
            }
          }
        }
        ++cur;
      }
    }
  }
  // The device contents just changed wholesale; every mark is stale.
  invalidate_all_blocks();
  return Status::ok();
}

Status ReliableChannel::refresh_from_journal() {
  if (device_lost_) return Status::ok();  // journal already IS the copy
  HBMVOLT_RETURN_IF_ERROR(rewrite_live_runs(/*verify=*/true));
  ++stats_.journal_refreshes;
  return Status::ok();
}

Status ReliableChannel::restore_after_power_cycle() {
  // A killed PC does not come back with the power cycle (another PC may
  // have requested it before this channel noticed the death): flip into
  // device-lost mode instead of writing into a dead device.
  if (!device_lost_ &&
      board_.stack(pc_.stack).pc_killed(pc_.index)) {
    set_device_lost();
  }
  if (!device_lost_) {
    HBMVOLT_RETURN_IF_ERROR(rewrite_live_runs(/*verify=*/false));
  }
  ++stats_.power_cycles;
  record_ladder(LadderRung::kPowerCycle);
  budget_.reset();
  escalation_pending_ = false;
  return Status::ok();
}

// ---- Whole-device loss (see header) ----

void ReliableChannel::adopt_device(unsigned new_pc_global) {
  HBMVOLT_REQUIRE(device_lost_, "adopt_device requires device-lost mode");
  const hbm::PcId new_pc =
      hbm::PcId::from_global(board_.geometry(), new_pc_global);
  auto fresh = std::make_unique<ecc::EccChannel>(board_.stack(new_pc.stack),
                                                 new_pc.index, config_.codec);
  HBMVOLT_REQUIRE(fresh->data_beats() == ecc_->data_beats(),
                  "spare PC capacity mismatch");
  ecc_ = std::move(fresh);
  pc_global_ = new_pc_global;
  pc_ = new_pc;
  // Device-keyed state resets to the fresh silicon; the logical channel
  // (journal, liveness, stats, budget, ladder trace) carries over.
  const std::uint64_t exposed = capacity();
  for (std::uint64_t i = 0; i < exposed; ++i) {
    remap_[i] = static_cast<std::uint32_t>(i);
  }
  const std::uint64_t data = ecc_->data_beats();
  spares_.clear();
  for (std::uint64_t i = exposed; i < data; ++i) {
    spares_.push_back(static_cast<std::uint32_t>(i));
  }
  spare_cursor_ = 0;
  parked_.clear();
  special_.clear();
  row_events_.clear();
  offender_rows_.clear();
  retired_rows_.clear();
  scrub_cursor_ = 0;
  invalidate_all_blocks();
}

Status ReliableChannel::rebuild_device_range(std::uint64_t logical,
                                             std::uint64_t count) {
  if (count == 0) return Status::ok();
  if (logical >= capacity() || count > capacity() - logical) {
    return out_of_range("rebuild range out of range");
  }
  // Post-adopt the mapping is identity with no exceptions, so live runs
  // go straight through the journal-rewrite engine with write-verify --
  // a rebuilt beat the spare silicon cannot hold is caught immediately.
  const std::uint64_t end = logical + count;
  std::uint64_t cur = logical;
  while (cur < end) {
    if (!live_.get(cur)) {
      const std::uint64_t next = live_.next_set(cur);
      cur = (next == BitVec::kNone || next > end) ? end : next;
      continue;
    }
    std::uint64_t run_end = live_.next_clear(cur);
    if (run_end == BitVec::kNone || run_end > end) run_end = end;
    HBMVOLT_RETURN_IF_ERROR(
        rewrite_plain_run(cur, run_end - cur, /*verify=*/true));
    stats_.rebuilt_beats += run_end - cur;
    cur = run_end;
  }
  return Status::ok();
}

void ReliableChannel::capture(ChannelCheckpoint* out) const {
  ChannelCheckpoint& ck = *out;
  ck.pc_global = pc_global_;
  ck.device_lost = device_lost_;
  ck.budget = budget_.state();
  ck.remap = remap_;
  ck.spares = spares_;
  ck.spare_cursor = spare_cursor_;
  ck.journal = journal_;
  ck.live.assign(live_.size(), false);
  for (std::uint64_t i = 0; i < live_.size(); ++i) ck.live[i] = live_.get(i);
  ck.parked = parked_.keys();
  ck.special = special_.keys();
  ck.row_events.assign(row_events_.begin(), row_events_.end());
  ck.offender_rows = offender_rows_.keys();
  ck.retired_rows = retired_rows_.keys();
  ck.ops = ops_;
  ck.scrub_cursor = scrub_cursor_;
  ck.escalation_pending = escalation_pending_;
  ck.clean_blocks.assign(clean_blocks_.size(), false);
  for (std::uint64_t i = 0; i < clean_blocks_.size(); ++i) {
    ck.clean_blocks[i] = clean_blocks_.get(i);
  }
  ck.scan_block = scan_block_;
  ck.scan_clean = scan_clean_;
  ck.stats = stats_;
  ck.flushed = flushed_;
  ck.ladder_trace = ladder_trace_;
  ck.ecc_shadow = ecc_->shadow_checks();
  ck.ecc_stats = ecc_->stats();
}

void ReliableChannel::restore(const ChannelCheckpoint& ck) {
  HBMVOLT_REQUIRE(ck.journal.size() == capacity(),
                  "checkpoint capacity mismatch");
  // Re-point at the checkpointed silicon (an adopted spare keeps serving
  // through the restore) and lay the shadow/stats back over it.
  const hbm::PcId pc = hbm::PcId::from_global(board_.geometry(), ck.pc_global);
  ecc_ = std::make_unique<ecc::EccChannel>(board_.stack(pc.stack), pc.index,
                                           config_.codec);
  pc_global_ = ck.pc_global;
  pc_ = pc;
  ecc_->restore_state(ck.ecc_shadow, ck.ecc_stats);
  device_lost_ = ck.device_lost;
  budget_.restore(ck.budget);
  remap_ = ck.remap;
  spares_ = ck.spares;
  spare_cursor_ = ck.spare_cursor;
  journal_ = ck.journal;
  live_.assign(ck.live.size(), false);
  for (std::uint64_t i = 0; i < ck.live.size(); ++i) {
    if (ck.live[i]) live_.set(i);
  }
  parked_.clear();
  for (const std::uint64_t key : ck.parked) parked_.insert(key);
  special_.clear();
  for (const std::uint64_t key : ck.special) special_.insert(key);
  row_events_.clear();
  for (const auto& [key, count] : ck.row_events) row_events_.add(key, count);
  offender_rows_.clear();
  for (const std::uint64_t key : ck.offender_rows) offender_rows_.insert(key);
  retired_rows_.clear();
  for (const std::uint64_t key : ck.retired_rows) retired_rows_.insert(key);
  ops_ = ck.ops;
  scrub_cursor_ = ck.scrub_cursor;
  escalation_pending_ = ck.escalation_pending;
  clean_blocks_.assign(ck.clean_blocks.size(), false);
  for (std::uint64_t i = 0; i < ck.clean_blocks.size(); ++i) {
    if (ck.clean_blocks[i]) clean_blocks_.set(i);
  }
  scan_block_ = ck.scan_block;
  scan_clean_ = ck.scan_clean;
  stats_ = ck.stats;
  flushed_ = ck.flushed;
  ladder_trace_ = ck.ladder_trace;
}

// ---- Retirement ladder ----

Result<std::uint64_t> ReliableChannel::allocate_spare() {
  while (spare_cursor_ < spares_.size()) {
    const std::uint64_t beat = spares_[spare_cursor_];
    const std::uint64_t key = row_key(beat);
    // Never migrate onto a retired row, nor onto a row currently being
    // evacuated.  Skipped spares are permanently consumed (cheap, and
    // keeps the cursor deterministic).
    if (retired_rows_.contains(key) || offender_rows_.contains(key)) {
      ++spare_cursor_;
      continue;
    }
    return beat;
  }
  return unavailable("spare pool exhausted");
}

void ReliableChannel::park_beat(std::uint64_t logical) {
  parked_.insert(logical);
  special_.insert(logical);
  ++stats_.beats_parked;
}

void ReliableChannel::remap_beat(std::uint64_t logical, std::uint64_t spare) {
  remap_[logical] = static_cast<std::uint32_t>(spare);
  // Remapped beats stay exceptions forever: remap never reverts.
  special_.insert(logical);
}

Status ReliableChannel::retire_offenders(bool* retired_any, bool* parked_any,
                                         bool* blocked) {
  *retired_any = false;
  *parked_any = false;
  *blocked = false;
  const Millivolts nominal = board_.config().regulator_config.vout_default;
  // Ascending row order (SortedKeySet iterates sorted); copied because the
  // loop erases absorbed rows.
  const std::vector<std::uint64_t> rows = offender_rows_.keys();
  for (const std::uint64_t row : rows) {
    bool row_blocked = false;
    bool spares_ran_out = false;
    for (std::uint64_t logical = 0; logical < capacity(); ++logical) {
      if (row_key(remap_[logical]) != row || parked_.contains(logical)) {
        continue;
      }
      auto spare = allocate_spare();
      if (!spare.is_ok()) {
        // Spares exhausted: the row cannot move.  A beat that still
        // decodes is left in place (SECDED keeps serving it); an
        // uncorrectable one is rewritten in place from the journal --
        // which clears soft upsets like bit rot -- and parked on the
        // journal if stuck cells keep it uncorrectable even then.
        spares_ran_out = true;
        if (!live_.get(logical)) continue;
        auto got = ecc_->read_beat(remap_[logical]);
        if (!got.is_ok()) return got.status();
        if (got.value().uncorrectable == 0) continue;
        if (board_.hbm_voltage() < nominal) {
          // A raise can still shrink the stuck set; climb first.
          row_blocked = true;
          break;
        }
        HBMVOLT_RETURN_IF_ERROR(
            ecc_->write_beat(remap_[logical], journal_[logical]));
        auto again = ecc_->read_beat(remap_[logical]);
        if (!again.is_ok()) return again.status();
        if (again.value().uncorrectable > 0) {
          park_beat(logical);
        }
        *parked_any = true;
        continue;
      }
      hbm::Beat data{};
      if (live_.get(logical)) {
        // Migrate through ECC, as real row-repair would: the journal is
        // reserved for last-resort recovery, not steady-state reads.
        auto got = ecc_->read_beat(remap_[logical]);
        if (!got.is_ok()) return got.status();
        if (got.value().uncorrectable > 0) {
          if (board_.hbm_voltage() < nominal) {
            // A voltage raise can still recover the stored word (stuck
            // sets are voltage-keyed); leave the row an offender and let
            // the ladder climb.
            row_blocked = true;
            break;
          }
          // Uncorrectable even at nominal (e.g. a weak-cell burst put two
          // stuck bits in one codeword): no voltage recovers it and a
          // power cycle would just rewrite-and-re-corrupt forever, so
          // fall back to the journal -- the last-written truth.
          data = journal_[logical];
          ++stats_.journal_migrations;
        } else {
          data = got.value().data;
        }
      }
      HBMVOLT_RETURN_IF_ERROR(ecc_->write_beat(spare.value(), data));
      remap_beat(logical, spare.value());
      ++spare_cursor_;  // commit the allocation
      ++stats_.beats_migrated;
    }
    if (row_blocked) {
      *blocked = true;
      continue;
    }
    if (spares_ran_out) {
      // Handled in place (repairs/parks), not migrated: the row is not
      // retired, but it no longer owes the ladder anything either.
      offender_rows_.erase(row);
      row_events_.erase(row);
      continue;
    }
    retired_rows_.insert(row);
    offender_rows_.erase(row);
    row_events_.erase(row);
    ++stats_.rows_retired;
    *retired_any = true;
  }
  if (*retired_any) ++stats_.retires;
  return Status::ok();
}

Result<LadderRung> ReliableChannel::escalate() {
  if (device_lost_) {
    // Whole-PC loss is beyond every PC-local rung and no global rung
    // recovers it either; the journal (and, in stripe mode, the fleet's
    // reconstruction/rebuild) is already serving.  Absorb the escalation.
    budget_.reset();
    escalation_pending_ = false;
    return LadderRung::kCorrect;
  }
  if (escalation_pending_) {
    // An uncorrectable word was seen: something (a fault storm, a deep
    // undervolt) is arming codewords faster than the rotating patrol
    // covers them.  Sweep every live beat NOW, so the retirement below
    // handles the whole blast radius in one ladder action -- an armed
    // word left undiscovered is one soft upset away from a SECDED
    // miscorrection.
    HBMVOLT_RETURN_IF_ERROR(patrol_all());
  }
  // Promote rows that crossed the event threshold to offenders.
  for (const auto& [key, events] : row_events_) {
    if (events >= config_.retire_threshold && !retired_rows_.contains(key)) {
      offender_rows_.insert(key);
    }
  }
  if (!escalation_pending_ && !budget_.burned() && offender_rows_.empty()) {
    return LadderRung::kCorrect;
  }

  bool retired_any = false;
  bool parked_any = false;
  bool blocked = false;
  HBMVOLT_RETURN_IF_ERROR(
      retire_offenders(&retired_any, &parked_any, &blocked));
  const bool absorbed = retired_any || parked_any;
  if (absorbed) record_ladder(LadderRung::kRetire);
  if (absorbed && !blocked) {
    // Rung 1 fully absorbed the escalation (migrations, in-place
    // repairs, and/or parks).
    budget_.reset();
    escalation_pending_ = false;
    return LadderRung::kCorrect;
  }

  const Millivolts nominal = board_.config().regulator_config.vout_default;
  if (blocked || escalation_pending_) {
    // A stored word only a global rung can recover.
    if (board_.hbm_voltage() < nominal) return LadderRung::kRaiseVoltage;
    return LadderRung::kPowerCycle;
  }
  if (budget_.burned() && board_.hbm_voltage() < nominal) {
    // A corrected-rate burn with nothing retirable: shrink the stuck set.
    return LadderRung::kRaiseVoltage;
  }
  // A corrected-rate burn at nominal with nothing left to retire: the
  // SLO is unmeetable at this capacity.  Consume the burn and serve on.
  budget_.reset();
  return LadderRung::kCorrect;
}

void ReliableChannel::on_global_action(LadderRung rung) {
  if (rung == LadderRung::kRaiseVoltage) {
    ++stats_.raises;
    record_ladder(LadderRung::kRaiseVoltage);
  }
  budget_.reset();
  escalation_pending_ = false;
  // The fault regime just changed; clean verdicts predate it.
  invalidate_all_blocks();
}

hbm::Beat make_payload(std::uint64_t seed, unsigned pc, std::uint64_t op) {
  hbm::Beat data;
  for (unsigned w = 0; w < 4; ++w) {
    data[w] = splitmix64(stream_seed(seed, pc, op, w));
  }
  return data;
}

Status ReliableChannel::cycle_and_restore() {
  for (unsigned tries = 0;; ++tries) {
    HBMVOLT_RETURN_IF_ERROR(board_.power_cycle());
    const Status restored = restore_after_power_cycle();
    if (restored.is_ok()) return restored;
    if (restored.code() != StatusCode::kUnavailable || tries >= 4) {
      return restored;
    }
    // A chaos crash landed mid-restore; cycle again (cooldown-limited,
    // so this terminates).
  }
}

Status ReliableChannel::serve_one(bool write_op, std::uint64_t logical,
                                  const hbm::Beat& payload,
                                  ServeReport* report) {
  unsigned attempts = 0;
  if (write_op) {
    for (;;) {
      const Status wrote = write(logical, payload);
      if (wrote.is_ok()) break;
      // A crashed stack (e.g. a chaos spurious crash) is rung 3
      // territory: cycle, restore the journal, retry the op.
      if (wrote.code() != StatusCode::kUnavailable || ++attempts > 4) {
        return wrote;
      }
      HBMVOLT_RETURN_IF_ERROR(cycle_and_restore());
    }
    ++report->writes;
    ++report->ops;
    return Status::ok();
  }
  bool escalated = false;
  for (;;) {
    auto got = read(logical);
    if (got.is_ok()) {
      if (got.value() != journal_[logical]) ++report->corrupt_reads;
      break;
    }
    // The full ladder (retire -> raise to nominal -> power-cycle) is
    // bounded: a climb from deep undervolt to nominal is at most a few
    // dozen 10 mV rungs, and everything above it is O(1).
    if (++attempts > 64) return got.status();
    escalated = true;
    if (got.status().code() == StatusCode::kUnavailable) {
      HBMVOLT_RETURN_IF_ERROR(cycle_and_restore());
      continue;
    }
    if (got.status().code() != StatusCode::kDataLoss) return got.status();
    HBMVOLT_RETURN_IF_ERROR(apply_ladder_serial());
  }
  ++report->reads;
  ++report->ops;
  if (escalated) ++report->escalated_reads;
  return Status::ok();
}

Status ReliableChannel::apply_ladder_serial() {
  auto rung = escalate();
  if (!rung.is_ok()) return rung.status();
  switch (rung.value()) {
    case LadderRung::kCorrect:
    case LadderRung::kRetire:
      return Status::ok();
    case LadderRung::kRaiseVoltage: {
      const Millivolts nominal =
          board_.config().regulator_config.vout_default;
      Millivolts next{board_.hbm_voltage().value + config_.raise_step_mv};
      if (next > nominal) next = nominal;
      HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(next));
      on_global_action(LadderRung::kRaiseVoltage);
      return Status::ok();
    }
    case LadderRung::kPowerCycle:
      // The cycle restores nominal voltage; bring the data back.
      return cycle_and_restore();
  }
  return Status::ok();
}

Result<ServeReport> ReliableChannel::serve(const workload::AccessTrace& trace,
                                           std::uint64_t data_seed) {
  ServeReport report;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const workload::TraceRecord& record = trace[i];
    const std::uint64_t logical = record.beat % capacity();
    // First touch of a beat is always a write: the journal is the read
    // self-check's truth, so reads of never-written beats are undefined.
    const bool write_op = record.write || !live_.get(logical);
    const hbm::Beat payload =
        write_op ? make_payload(data_seed, pc_global_, i) : hbm::Beat{};
    HBMVOLT_RETURN_IF_ERROR(serve_one(write_op, logical, payload, &report));
    // Consume a burned budget between ops, before a read trips on it.
    if (budget_.burned() || escalation_pending_) {
      HBMVOLT_RETURN_IF_ERROR(apply_ladder_serial());
    }
  }
  flush_telemetry();
  return report;
}

Result<ServeReport> ReliableChannel::serve_trace(
    const workload::AccessTrace& trace, std::uint64_t data_seed) {
  ServeReport report;
  std::size_t i = 0;
  while (i < trace.size()) {
    const std::uint64_t first = trace[i].beat % capacity();
    const bool write_op = trace[i].write || !live_.get(first);
    // Extend a maximal run of consecutive-beat, same-direction records.
    // Distinct ascending beats, so intra-run decisions cannot depend on
    // intra-run effects; the coalescing itself is engine-independent.
    std::size_t j = i + 1;
    while (j < trace.size()) {
      const std::uint64_t lj = trace[j].beat % capacity();
      if (lj != first + (j - i)) break;
      const bool wj = trace[j].write || !live_.get(lj);
      if (wj != write_op) break;
      ++j;
    }
    const std::uint64_t n = j - i;
    bool bulk_done = false;
    if (n >= 2) {
      Status st = Status::ok();
      if (write_op) {
        trace_beats_.resize(n);
        for (std::uint64_t k = 0; k < n; ++k) {
          trace_beats_[k] = make_payload(data_seed, pc_global_, i + k);
        }
        st = write_range(first, n, trace_beats_.data());
        if (st.is_ok()) {
          report.writes += n;
          report.ops += n;
          bulk_done = true;
        }
      } else {
        trace_beats_.resize(n);
        st = read_range(first, n, trace_beats_.data());
        if (st.is_ok()) {
          for (std::uint64_t k = 0; k < n; ++k) {
            if (trace_beats_[k] != journal_[first + k]) {
              ++report.corrupt_reads;
            }
          }
          report.reads += n;
          report.ops += n;
          bulk_done = true;
        }
      }
      if (!bulk_done && st.code() != StatusCode::kDataLoss &&
          st.code() != StatusCode::kUnavailable) {
        return st;
      }
    }
    if (!bulk_done) {
      // Singleton, or a bulk call that hit the ladder: serve op by op so
      // the full escalate-and-retry machinery applies.
      for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t logical = first + k;
        const hbm::Beat payload = write_op
                                      ? make_payload(data_seed, pc_global_,
                                                     i + k)
                                      : hbm::Beat{};
        HBMVOLT_RETURN_IF_ERROR(
            serve_one(write_op, logical, payload, &report));
        if (budget_.burned() || escalation_pending_) {
          HBMVOLT_RETURN_IF_ERROR(apply_ladder_serial());
        }
      }
    } else if (budget_.burned() || escalation_pending_) {
      // Bulk runs consume a burned budget at run boundaries.
      HBMVOLT_RETURN_IF_ERROR(apply_ladder_serial());
    }
    i = j;
  }
  flush_telemetry();
  return report;
}

void ReliableChannel::flush_telemetry() {
  auto* tel = telemetry::Telemetry::active();
  if (tel == nullptr) {
    flushed_ = stats_;
    // Nothing records latency without an active instance, but clear
    // anyway so a mid-run disable cannot leak stale samples later.
    read_latency_.clear();
    write_latency_.clear();
    return;
  }
  auto& metrics = tel->metrics();
  const std::size_t pcs = board_.geometry().total_pcs();
  // The per-PC hot counters export as `{pc=N}` families (the bare name
  // stays the cross-PC total in every sink); low-rate ladder bookkeeping
  // stays un-labeled.
  const auto emit_pc = [&](const char* name, std::uint64_t now,
                           std::uint64_t before) {
    if (now > before) {
      metrics.counter_family(name, "pc", pcs).at(pc_global_).add(now - before);
    }
  };
  const auto emit = [tel](const char* name, std::uint64_t now,
                          std::uint64_t before) {
    if (now > before) tel->count(name, now - before);
  };
  emit_pc("runtime.reads", stats_.reads, flushed_.reads);
  emit_pc("runtime.writes", stats_.writes, flushed_.writes);
  emit_pc("runtime.corrected_words", stats_.corrected_words,
          flushed_.corrected_words);
  emit_pc("runtime.corrected_check_words", stats_.corrected_check_words,
          flushed_.corrected_check_words);
  emit_pc("runtime.uncorrectable_blocked", stats_.uncorrectable_blocked,
          flushed_.uncorrectable_blocked);
  emit("runtime.rows_retired", stats_.rows_retired, flushed_.rows_retired);
  emit("runtime.beats_migrated", stats_.beats_migrated,
       flushed_.beats_migrated);
  emit_pc("runtime.beats_parked", stats_.beats_parked, flushed_.beats_parked);
  emit_pc("runtime.journal_served_reads", stats_.journal_served_reads,
          flushed_.journal_served_reads);
  emit("runtime.verify_caught", stats_.verify_caught, flushed_.verify_caught);
  emit("runtime.journal_refreshes", stats_.journal_refreshes,
       flushed_.journal_refreshes);
  emit_pc("runtime.reconstructed_reads", stats_.reconstructed_reads,
          flushed_.reconstructed_reads);
  emit_pc("runtime.rebuilt_beats", stats_.rebuilt_beats,
          flushed_.rebuilt_beats);
  emit_pc("scrub.beats", stats_.scrub_beats, flushed_.scrub_beats);
  emit("scrub.corrected", stats_.scrub_corrected, flushed_.scrub_corrected);
  emit("scrub.uncorrectable", stats_.scrub_uncorrectable,
       flushed_.scrub_uncorrectable);
  emit("scrub.writebacks", stats_.scrub_writebacks,
       flushed_.scrub_writebacks);
  emit("scrub.blocks_skipped", stats_.scrub_blocks_skipped,
       flushed_.scrub_blocks_skipped);
  metrics.gauge_family("runtime.spares_free", "pc", pcs)
      .at(pc_global_)
      .set(static_cast<std::int64_t>(spares_free()));
  metrics.gauge_family("runtime.parked_beats", "pc", pcs)
      .at(pc_global_)
      .set(static_cast<std::int64_t>(parked_count()));
  if (read_latency_.count() > 0) {
    metrics.hdr_family("latency.read", "pc", pcs)
        .merge_into(pc_global_, read_latency_);
  }
  if (write_latency_.count() > 0) {
    metrics.hdr_family("latency.write", "pc", pcs)
        .merge_into(pc_global_, write_latency_);
  }
  read_latency_.clear();
  write_latency_.clear();
  flushed_ = stats_;
}

}  // namespace hbmvolt::runtime
