// Flat index structures for the reliable runtime's hot path.
//
// The runtime's exception sets (parked beats, remapped beats, offender and
// retired rows, per-row event counts) are tiny -- a handful of entries even
// in deep-undervolt soaks -- but they sit on the per-access path, where the
// previous std::unordered_map/std::unordered_set cost a hash probe (and a
// cache miss) per beat.  These flat structures make the common no-faults
// case one branch (`empty()`), membership a binary search over a dense
// array, and -- the piece hash tables cannot do at all -- give the range
// engine a cheap "is anything special in [lo, hi)?" interval probe so bulk
// requests split into long plain runs plus sparse exceptions.
//
// All operations are deterministic (sorted order, no hashing), which the
// twin-universe fingerprint equivalence between the per-beat and range
// engines relies on.

#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace hbmvolt::runtime {

/// Sorted unique vector of 64-bit keys.  O(log n) membership and interval
/// probes; O(n) insert/erase, which is fine for sets that grow by ones
/// during rare ladder actions.
class SortedKeySet {
 public:
  static constexpr std::uint64_t kNone = ~0ull;

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    return std::binary_search(keys_.begin(), keys_.end(), key);
  }

  /// Returns true when the key was newly inserted.
  bool insert(std::uint64_t key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) return false;
    keys_.insert(it, key);
    return true;
  }

  /// Returns true when the key was present.
  bool erase(std::uint64_t key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) return false;
    keys_.erase(it);
    return true;
  }

  /// Any key in [lo, hi)?  The range engine's one-branch fast path when
  /// the set is empty.
  [[nodiscard]] bool any_in_range(std::uint64_t lo,
                                  std::uint64_t hi) const noexcept {
    if (keys_.empty()) return false;
    auto it = std::lower_bound(keys_.begin(), keys_.end(), lo);
    return it != keys_.end() && *it < hi;
  }

  /// Smallest key in [lo, hi), or kNone.
  [[nodiscard]] std::uint64_t first_in_range(std::uint64_t lo,
                                             std::uint64_t hi) const noexcept {
    if (keys_.empty()) return kNone;
    auto it = std::lower_bound(keys_.begin(), keys_.end(), lo);
    if (it == keys_.end() || *it >= hi) return kNone;
    return *it;
  }

  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }
  void clear() noexcept { keys_.clear(); }

  /// Ascending iteration (already the deterministic order retirement
  /// wants; no copy-and-sort step needed).
  [[nodiscard]] const std::vector<std::uint64_t>& keys() const noexcept {
    return keys_;
  }

 private:
  std::vector<std::uint64_t> keys_;
};

/// Sorted-vector map from row key to event count, replacing
/// unordered_map<uint64_t, unsigned>.  Iteration is ascending by key, so
/// offender promotion needs no sort-for-determinism pass.
class RowEventCounts {
 public:
  void add(std::uint64_t key, unsigned delta) {
    auto it = std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const auto& item, std::uint64_t k) { return item.first < k; });
    if (it != items_.end() && it->first == key) {
      it->second += delta;
      return;
    }
    items_.insert(it, {key, delta});
  }

  void erase(std::uint64_t key) {
    auto it = std::lower_bound(
        items_.begin(), items_.end(), key,
        [](const auto& item, std::uint64_t k) { return item.first < k; });
    if (it != items_.end() && it->first == key) items_.erase(it);
  }

  [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
  [[nodiscard]] auto end() const noexcept { return items_.end(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  void clear() noexcept { items_.clear(); }

 private:
  std::vector<std::pair<std::uint64_t, unsigned>> items_;
};

/// Word-backed bit vector with run scans -- std::vector<bool> without the
/// proxy overhead, plus next_set/next_clear so the range engine walks live
/// runs a word at a time instead of a bit at a time.
class BitVec {
 public:
  static constexpr std::uint64_t kNone = ~0ull;

  void assign(std::uint64_t bits, bool value) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, value ? ~0ull : 0ull);
    trim_tail();
  }

  [[nodiscard]] bool get(std::uint64_t i) const noexcept {
    return (words_[i / 64] >> (i % 64)) & 1ull;
  }
  void set(std::uint64_t i) noexcept { words_[i / 64] |= 1ull << (i % 64); }
  void clear(std::uint64_t i) noexcept {
    words_[i / 64] &= ~(1ull << (i % 64));
  }
  void clear_all() noexcept {
    std::fill(words_.begin(), words_.end(), 0ull);
  }

  [[nodiscard]] std::uint64_t size() const noexcept { return bits_; }

  /// Smallest set index >= from, or kNone.
  [[nodiscard]] std::uint64_t next_set(std::uint64_t from) const noexcept {
    return scan(from, false);
  }
  /// Smallest clear index >= from, or kNone (== size() callers typically
  /// clamp against an end bound anyway).
  [[nodiscard]] std::uint64_t next_clear(std::uint64_t from) const noexcept {
    return scan(from, true);
  }

 private:
  [[nodiscard]] std::uint64_t scan(std::uint64_t from,
                                   bool inverted) const noexcept {
    if (from >= bits_) return kNone;
    std::uint64_t w = from / 64;
    std::uint64_t word = (inverted ? ~words_[w] : words_[w]) &
                         (~0ull << (from % 64));
    for (;;) {
      if (word != 0) {
        const std::uint64_t i =
            w * 64 + static_cast<unsigned>(__builtin_ctzll(word));
        return i < bits_ ? i : kNone;
      }
      if (++w >= words_.size()) return kNone;
      word = inverted ? ~words_[w] : words_[w];
    }
  }

  void trim_tail() noexcept {
    // Keep bits past `bits_` zero so whole-word scans stay honest.
    if (bits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ull << (bits_ % 64)) - 1;
    }
  }

  std::uint64_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hbmvolt::runtime
