#include "runtime/fleet.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/parallel.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::runtime {
namespace {

/// The fleet's standing rules when the caller supplies none: page when
/// the corrected rate burns the channel budget's own SLO, when reads
/// start leaking into the host journal faster than 1%, and when stripe
/// reconstruction serves more than 1% of reads (a dead PC whose rebuild
/// is not keeping up) -- each with a sharp fast window and a calmer slow
/// window (see telemetry/alerts.hpp).
std::vector<telemetry::AlertRule> resolve_rules(const FleetConfig& config) {
  if (!config.alert_rules.empty()) return config.alert_rules;
  std::vector<telemetry::AlertRule> rules = {
      {"corrected_burn", telemetry::AlertSignal::kCorrectedRate,
       config.channel.budget.corrected_slo, 1, 4.0, 4, 1.0},
      {"journal_served", telemetry::AlertSignal::kJournalServedRate, 0.01, 1,
       4.0, 4, 1.0},
      {"reconstructed", telemetry::AlertSignal::kReconstructedRate, 0.01, 1,
       4.0, 4, 1.0},
  };
  if (config.source != nullptr) {
    // Request-plane runs also page on sustained shedding: 5% of offered
    // load refused is the budget, same sharp-fast / calm-slow windows.
    rules.push_back({"shed_burn", telemetry::AlertSignal::kShedRate, 0.05, 1,
                     4.0, 4, 1.0});
  }
  return rules;
}

void xor_into(hbm::Beat& acc, const hbm::Beat& b) noexcept {
  for (unsigned w = 0; w < 4; ++w) acc[w] ^= b[w];
}

}  // namespace

ServingFleet::ServingFleet(board::Vcu128Board& board, FleetConfig config)
    : board_(board),
      config_(std::move(config)),
      alerts_(resolve_rules(config_)) {
  HBMVOLT_REQUIRE(config_.ops_per_epoch > 0, "epoch must serve ops");
  if (config_.pcs.empty()) {
    for (unsigned pc = 0; pc < board_.geometry().total_pcs(); ++pc) {
      config_.pcs.push_back(pc);
    }
  }
  // The scheme owns the per-word codec; kStripe additionally carves the
  // PC pool into stripe groups + parity PCs + spares.
  config_.channel.codec = mitigate::scheme_info(config_.scheme).codec;
  if (striped()) {
    const unsigned width = config_.stripe_width;
    HBMVOLT_REQUIRE(width >= 2, "stripe width must be at least 2");
    HBMVOLT_REQUIRE(config_.rebuild_beats_per_epoch > 0,
                    "rebuild step must make progress");
    const std::size_t group_count = config_.pcs.size() / (width + 1);
    HBMVOLT_REQUIRE(group_count >= 1,
                    "stripe needs at least width+1 pseudo-channels");
    const std::vector<unsigned> pool = std::move(config_.pcs);
    const std::size_t serving = group_count * width;
    config_.pcs.assign(pool.begin(), pool.begin() + serving);
    parity_channels_.reserve(group_count);
    for (std::size_t g = 0; g < group_count; ++g) {
      parity_channels_.push_back(std::make_unique<ReliableChannel>(
          board_, pool[serving + g], config_.channel));
    }
    spare_pcs_.assign(pool.begin() + serving + group_count, pool.end());
    groups_.resize(group_count);
    parity_prev_.resize(group_count);
  }
  channels_.reserve(config_.pcs.size());
  traces_.reserve(config_.pcs.size());
  for (const unsigned pc : config_.pcs) {
    channels_.push_back(
        std::make_unique<ReliableChannel>(board_, pc, config_.channel));
    if (config_.source != nullptr) {
      // Request-plane mode: the source's slot queues replace the
      // built-in op streams entirely.
      traces_.emplace_back();
      continue;
    }
    traces_.push_back(
        config_.streaming_passes > 0
            ? workload::make_streaming(channels_.back()->capacity(),
                                       config_.streaming_passes)
            : workload::make_uniform_random(
                  channels_.back()->capacity(), config_.ops_per_pc,
                  config_.write_fraction,
                  stream_seed(config_.seed, 0xF1EE7, pc, 0)));
  }
  if (config_.source == nullptr && config_.streaming_passes > 0) {
    // Keep the epoch bound in run() honest: the streaming trace length
    // is capacity * passes, not the (ignored) ops_per_pc.
    std::uint64_t longest = 0;
    for (const auto& trace : traces_) {
      longest = std::max<std::uint64_t>(longest, trace.size());
    }
    config_.ops_per_pc = longest;
  }
  if (striped()) {
    // Stripe XOR needs every member and parity channel address-congruent.
    for (const auto& channel : channels_) {
      HBMVOLT_REQUIRE(channel->capacity() == channels_[0]->capacity(),
                      "stripe members must have equal capacity");
    }
    for (const auto& parity : parity_channels_) {
      HBMVOLT_REQUIRE(parity->capacity() >= channels_[0]->capacity(),
                      "parity PC smaller than stripe members");
    }
  }
  states_.resize(config_.pcs.size());
  epoch_prev_.resize(config_.pcs.size());
  health_.reset(config_.pcs.size());
}

// ---- Scheme-dispatching op wrappers ----

bool ServingFleet::absorb_device_loss(ReliableChannel& ch) {
  const hbm::PcId pc =
      hbm::PcId::from_global(board_.geometry(), ch.pc_global());
  if (!board_.stack(pc.stack).pc_killed(pc.index)) return false;
  if (!ch.device_lost()) {
    ch.set_device_lost();
    HBMVOLT_LOG_INFO("runtime: PC %u device lost; serving from %s",
                     ch.pc_global(), striped() ? "stripe" : "journal");
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count("runtime.fleet.device_lost");
    }
  }
  return true;
}

hbm::Beat ServingFleet::parity_value(std::size_t g,
                                     std::uint64_t logical) const {
  hbm::Beat acc{};
  const std::size_t base = g * config_.stripe_width;
  for (std::size_t s = base; s < base + config_.stripe_width; ++s) {
    const ReliableChannel& member = *channels_[s];
    if (member.journal_live(logical)) {
      xor_into(acc, member.journal_beat(logical));
    }
  }
  return acc;
}

Status ServingFleet::settle_parity(std::size_t g, PcState& st) {
  ReliableChannel& parity = *parity_channels_[g];
  if (!parity.budget().burned() && !parity.escalation_pending()) {
    return Status::ok();
  }
  auto rung = parity.escalate();
  if (!rung.is_ok()) return rung.status();
  if (rung.value() != LadderRung::kCorrect) {
    st.wants_global = true;
    st.wanted = rung.value();
  }
  return Status::ok();
}

Status ServingFleet::do_write(std::size_t i, std::uint64_t logical,
                              const hbm::Beat& data) {
  ReliableChannel& member = *channels_[i];
  Status wrote = member.write(logical, data);
  if (!wrote.is_ok() || !striped()) return wrote;

  // Maintain the stripe invariant: parity journal/device hold the XOR of
  // the live member journals.  Recomputing (rather than delta-patching)
  // makes retries after a mid-op crash idempotent -- the member journal
  // only advances on success, and this XOR is a pure function of it.
  const std::size_t g = group_of(i);
  ReliableChannel& parity = *parity_channels_[g];
  const hbm::Beat pv = parity_value(g, logical);
  Status ps = parity.write(logical, pv);
  if (ps.code() == StatusCode::kUnavailable && absorb_device_loss(parity)) {
    ps = parity.write(logical, pv);  // journal-only now
  }
  if (!ps.is_ok()) return ps;

  // Writes landing behind the rebuild cursor must refresh the adopted
  // silicon too, or the rebuilt device copy goes stale vs the journal.
  StripeGroup& grp = groups_[g];
  if (member.device_lost() && grp.rebuilding == i &&
      logical < grp.rebuild_cursor) {
    HBMVOLT_RETURN_IF_ERROR(member.rebuild_device_range(logical, 1));
  }
  if (parity.device_lost() && grp.rebuilding_parity &&
      logical < grp.rebuild_cursor) {
    HBMVOLT_RETURN_IF_ERROR(parity.rebuild_device_range(logical, 1));
  }
  return Status::ok();
}

Status ServingFleet::do_write_range(std::size_t i, std::uint64_t logical,
                                    std::uint64_t count,
                                    const hbm::Beat* data) {
  ReliableChannel& member = *channels_[i];
  Status wrote = member.write_range(logical, count, data);
  if (!wrote.is_ok() || !striped()) return wrote;

  const std::size_t g = group_of(i);
  ReliableChannel& parity = *parity_channels_[g];
  std::vector<hbm::Beat>& pbuf = states_[i].pbuf;
  pbuf.resize(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    pbuf[k] = parity_value(g, logical + k);
  }
  Status ps = parity.write_range(logical, count, pbuf.data());
  if (ps.code() == StatusCode::kUnavailable && absorb_device_loss(parity)) {
    ps = parity.write_range(logical, count, pbuf.data());
  }
  if (!ps.is_ok()) return ps;

  StripeGroup& grp = groups_[g];
  if (member.device_lost() && grp.rebuilding == i &&
      logical < grp.rebuild_cursor) {
    const std::uint64_t overlap =
        std::min(grp.rebuild_cursor, logical + count) - logical;
    HBMVOLT_RETURN_IF_ERROR(member.rebuild_device_range(logical, overlap));
  }
  if (parity.device_lost() && grp.rebuilding_parity &&
      logical < grp.rebuild_cursor) {
    const std::uint64_t overlap =
        std::min(grp.rebuild_cursor, logical + count) - logical;
    HBMVOLT_RETURN_IF_ERROR(parity.rebuild_device_range(logical, overlap));
  }
  return Status::ok();
}

Result<hbm::Beat> ServingFleet::stripe_fetch(ReliableChannel& ch,
                                             std::uint64_t logical,
                                             PcState& st) {
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    auto got = ch.read(logical);
    if (got.is_ok()) return got;
    if (got.status().code() == StatusCode::kUnavailable) {
      // A killed contributor keeps serving through its journal.
      if (absorb_device_loss(ch)) continue;
      return got.status();  // board-level: the caller requests a cycle
    }
    if (got.status().code() != StatusCode::kDataLoss) return got.status();
    auto rung = ch.escalate();
    if (!rung.is_ok()) return rung.status();
    if (rung.value() != LadderRung::kCorrect) {
      // Park the contributor's global need on the member being served;
      // the op retries after the barrier applies it.
      st.wants_global = true;
      st.wanted = rung.value();
      return data_loss("stripe contributor needs a global ladder rung");
    }
  }
  return data_loss("stripe contributor read did not converge");
}

Result<hbm::Beat> ServingFleet::reconstruct_read(std::size_t i,
                                                 std::uint64_t logical) {
  const std::size_t g = group_of(i);
  PcState& st = states_[i];
  hbm::Beat acc{};
  auto parity = stripe_fetch(*parity_channels_[g], logical, st);
  if (!parity.is_ok()) return parity.status();
  xor_into(acc, parity.value());
  const std::size_t base = g * config_.stripe_width;
  for (std::size_t s = base; s < base + config_.stripe_width; ++s) {
    if (s == i) continue;
    ReliableChannel& peer = *channels_[s];
    if (!peer.journal_live(logical)) continue;
    auto got = stripe_fetch(peer, logical, st);
    if (!got.is_ok()) return got.status();
    xor_into(acc, got.value());
  }
  ++channels_[i]->stats_.reconstructed_reads;
  return acc;
}

Result<hbm::Beat> ServingFleet::do_read(std::size_t i, std::uint64_t logical) {
  ReliableChannel& member = *channels_[i];
  if (!striped() || !member.device_lost()) return member.read(logical);
  // Reconstruction survives exactly one lost member per group; a second
  // loss degrades to journal-backed serving (still zero corrupt reads).
  const std::size_t base = group_of(i) * config_.stripe_width;
  for (std::size_t s = base; s < base + config_.stripe_width; ++s) {
    if (s != i && channels_[s]->device_lost()) return member.read(logical);
  }
  return reconstruct_read(i, logical);
}

// ---- Epoch workers ----

bool ServingFleet::storm_tick_slot(std::size_t i) {
  PcState& st = states_[i];
  if (!config_.storm_hook || st.cursor < st.storm_next) return true;
  ReliableChannel& channel = *channels_[i];
  const bool alarm = config_.storm_hook(config_.pcs[i], st.cursor);
  st.storm_next = st.cursor + 1;
  if (!alarm) return true;
  // Environmental alarm: flush soft state and expose any word the storm
  // armed before SECDED can miscorrect it (see refresh_from_journal).
  const Status refreshed = channel.refresh_from_journal();
  if (!refreshed.is_ok()) {
    if (refreshed.code() == StatusCode::kUnavailable) {
      if (!absorb_device_loss(channel)) {
        st.wants_global = true;
        st.wanted = LadderRung::kPowerCycle;
        return false;
      }
      // Whole-PC death: nothing left to refresh; keep serving through
      // the journal / stripe reconstruction.
    } else {
      st.status = refreshed;
      return false;
    }
  }
  if (channel.escalation_pending()) {
    auto rung = channel.escalate();
    if (!rung.is_ok()) {
      st.status = rung.status();
      return false;
    }
    if (rung.value() != LadderRung::kCorrect) {
      st.wants_global = true;
      st.wanted = rung.value();
      return false;
    }
  }
  return true;
}

void ServingFleet::serve_pc_epoch(std::size_t i) {
  ReliableChannel& channel = *channels_[i];
  const workload::AccessTrace& trace = traces_[i];
  const unsigned pc = config_.pcs[i];
  PcState& st = states_[i];
  st.wants_global = false;
  st.wanted = LadderRung::kCorrect;
  const std::uint64_t data_seed = mix_seed(config_.seed, 0xDA7A);

  std::uint64_t served = 0;
  while (st.cursor < trace.size() && served < config_.ops_per_epoch) {
    if (!storm_tick_slot(i)) return;
    const workload::TraceRecord& record = trace[st.cursor];
    const std::uint64_t logical = record.beat % channel.capacity();
    const bool write_op = record.write || !channel.journal_live(logical);

    // Coalesce a maximal run of consecutive-beat, same-direction records
    // into one bulk call -- the range fast path.  A storm hook pins the
    // loop to per-op granularity (the hook must fire before every op),
    // and a bulk call that hits the ladder falls back to the per-op
    // machinery below without consuming the cursor.
    if (!config_.storm_hook) {
      const std::uint64_t run_budget =
          std::min<std::uint64_t>(trace.size() - st.cursor,
                                  config_.ops_per_epoch - served);
      std::uint64_t n = 1;
      while (n < run_budget) {
        const workload::TraceRecord& r2 = trace[st.cursor + n];
        const std::uint64_t l2 = r2.beat % channel.capacity();
        if (l2 != logical + n) break;
        const bool w2 = r2.write || !channel.journal_live(l2);
        if (w2 != write_op) break;
        ++n;
      }
      if (n >= 2) {
        Status st_bulk = Status::ok();
        if (write_op) {
          st.beats.resize(n);
          for (std::uint64_t k = 0; k < n; ++k) {
            st.beats[k] = make_payload(data_seed, pc, st.cursor + k);
          }
          st_bulk = do_write_range(i, logical, n, st.beats.data());
          if (st_bulk.is_ok()) st.report.writes += n;
        } else {
          st.beats.resize(n);
          st_bulk = channel.read_range(logical, n, st.beats.data());
          if (st_bulk.is_ok()) {
            for (std::uint64_t k = 0; k < n; ++k) {
              if (st.beats[k] != channel.journal_beat(logical + k)) {
                ++st.report.corrupt_reads;
              }
            }
            st.report.reads += n;
          }
        }
        if (st_bulk.is_ok()) {
          st.report.ops += n;
          st.cursor += n;
          served += n;
          st.attempts = 0;
          if (channel.budget().burned() || channel.escalation_pending()) {
            auto rung = channel.escalate();
            if (!rung.is_ok()) {
              st.status = rung.status();
              return;
            }
            if (rung.value() != LadderRung::kCorrect) {
              st.wants_global = true;
              st.wanted = rung.value();
              return;
            }
          }
          if (striped()) {
            const Status settled = settle_parity(group_of(i), st);
            if (!settled.is_ok()) {
              st.status = settled;
              return;
            }
            if (st.wants_global) return;
          }
          continue;
        }
        if (st_bulk.code() != StatusCode::kDataLoss &&
            st_bulk.code() != StatusCode::kUnavailable) {
          st.status = st_bulk;
          return;
        }
        // Fall through: the per-op path re-serves the run from its start
        // and applies the usual escalate-and-retry handling.
      }
    }

    if (write_op) {
      const Status wrote =
          do_write(i, logical, make_payload(data_seed, pc, st.cursor));
      if (!wrote.is_ok()) {
        if (st.wants_global) return;  // parked by a stripe contributor
        if (wrote.code() == StatusCode::kUnavailable) {
          // Whole-PC death is absorbed locally (journal/stripe serving);
          // a crashed stack requests rung 3 and ends the epoch -- the op
          // is retried after the barrier's power-cycle + restore.
          if (absorb_device_loss(channel)) continue;
          ++st.attempts;
          st.wants_global = true;
          st.wanted = LadderRung::kPowerCycle;
          return;
        }
        st.status = wrote;
        return;
      }
      ++st.report.writes;
    } else {
      auto got = do_read(i, logical);
      if (!got.is_ok()) {
        if (++st.attempts > 64) {
          st.status = got.status();
          return;
        }
        if (st.wants_global) return;  // parked by a stripe contributor
        if (got.status().code() == StatusCode::kUnavailable) {
          if (absorb_device_loss(channel)) continue;
          st.wants_global = true;
          st.wanted = LadderRung::kPowerCycle;
          return;
        }
        if (got.status().code() != StatusCode::kDataLoss) {
          st.status = got.status();
          return;
        }
        auto rung = channel.escalate();
        if (!rung.is_ok()) {
          st.status = rung.status();
          return;
        }
        if (rung.value() == LadderRung::kCorrect) continue;  // retry now
        st.wants_global = true;
        st.wanted = rung.value();
        return;  // retried after the barrier applies the global rung
      }
      if (got.value() != channel.journal_beat(logical)) {
        ++st.report.corrupt_reads;
      }
      ++st.report.reads;
      if (st.attempts > 0) ++st.report.escalated_reads;
    }
    ++st.report.ops;
    ++st.cursor;
    ++served;
    st.attempts = 0;

    // Consume a burned budget between ops, before a read trips on it.
    if (channel.budget().burned() || channel.escalation_pending()) {
      auto rung = channel.escalate();
      if (!rung.is_ok()) {
        st.status = rung.status();
        return;
      }
      if (rung.value() != LadderRung::kCorrect) {
        st.wants_global = true;
        st.wanted = rung.value();
        return;
      }
    }
    if (striped() && write_op) {
      const Status settled = settle_parity(group_of(i), st);
      if (!settled.is_ok()) {
        st.status = settled;
        return;
      }
      if (st.wants_global) return;
    }
  }
}

void ServingFleet::serve_pc_source_epoch(std::size_t i) {
  ReliableChannel& channel = *channels_[i];
  RequestSource& source = *config_.source;
  const unsigned pc = config_.pcs[i];
  PcState& st = states_[i];
  st.wants_global = false;
  st.wanted = LadderRung::kCorrect;
  const std::uint64_t data_seed = mix_seed(config_.seed, 0xDA7A);
  const std::uint64_t reconstruct_ns =
      kModelDeviceReadNs * (striped() ? config_.stripe_width + 1 : 1);

  std::uint64_t served = 0;
  while (served < config_.ops_per_epoch) {
    const PlacedRequest* queued = source.front(i);
    if (queued == nullptr) return;  // slot drained for this epoch
    // The storm hook ticks once per *request* here (st.cursor is the
    // request tick); a parked request re-serves at the same tick, so the
    // storm_next guard keeps the schedule identical across retries.
    if (!storm_tick_slot(i)) return;
    const PlacedRequest r = *queued;
    HBMVOLT_REQUIRE(r.count > 0 && r.logical + r.count <= channel.capacity(),
                    "placed request outside slot capacity");

    // Model-latency bookkeeping: read paths are classified after the
    // fact from the channel's own stat deltas (journal-served vs stripe-
    // reconstructed vs device), so the worker never second-guesses the
    // channel's routing.
    std::uint64_t js_prev = channel.stats().journal_served_reads;
    std::uint64_t rc_prev = channel.stats().reconstructed_reads;
    std::uint64_t model_ns = 0;
    ServeOutcome outcome = ServeOutcome::kServed;
    bool deadline_hedge = false;  // blown deadline: rest served from journal
    bool dropped = false;
    bool wrote_any = false;

    std::uint64_t k = 0;
    while (k < r.count) {
      const std::uint64_t logical = r.logical + k;
      const bool write_op = r.write || !channel.journal_live(logical);
      if (write_op) {
        // Coalesce the maximal write run; payloads are pure in
        // (tenant, beat) so a re-served request rewrites identical data.
        std::uint64_t n = 1;
        while (k + n < r.count &&
               (r.write || !channel.journal_live(r.logical + k + n))) {
          ++n;
        }
        st.beats.resize(n);
        for (std::uint64_t j = 0; j < n; ++j) {
          st.beats[j] = make_payload(
              data_seed, pc,
              (static_cast<std::uint64_t>(r.tenant) << 40) ^ (logical + j));
        }
        const Status wrote =
            n >= 2 ? do_write_range(i, logical, n, st.beats.data())
                   : do_write(i, logical, st.beats[0]);
        if (!wrote.is_ok()) {
          if (st.wants_global) return;  // parked by a stripe contributor
          if (wrote.code() == StatusCode::kUnavailable) {
            if (absorb_device_loss(channel)) continue;  // journal-only now
            st.wants_global = true;
            st.wanted = LadderRung::kPowerCycle;
            return;
          }
          st.status = wrote;
          return;
        }
        st.report.writes += n;
        wrote_any = true;
        model_ns += n * (channel.device_lost() ? kModelJournalNs
                                               : kModelDeviceWriteNs);
        k += n;
        continue;
      }

      // QoS shortcut: when the device copy is gone (or the deadline is
      // already blown for a hedging tenant), answer from the journal copy
      // -- it is the reference every read is verified against, so this
      // trades device fidelity, not correctness, for bounded latency.
      const bool shortcut =
          (r.stale_ok && channel.device_lost()) ||
          (r.hedge && (channel.device_lost() || deadline_hedge));
      if (shortcut) {
        std::uint64_t n = 1;
        while (k + n < r.count && channel.journal_live(r.logical + k + n)) {
          ++n;
        }
        st.report.reads += n;
        model_ns += n * kModelJournalNs;
        if (outcome == ServeOutcome::kServed) {
          outcome = (r.hedge && (deadline_hedge || !r.stale_ok))
                        ? ServeOutcome::kHedged
                        : ServeOutcome::kStale;
        }
        k += n;
        continue;
      }

      // Bulk read fast path, same guards as trace mode (per-op machinery
      // below re-serves the run on any ladder interaction).
      if (!config_.storm_hook && !channel.device_lost() && k + 1 < r.count) {
        std::uint64_t n = 1;
        while (k + n < r.count && channel.journal_live(r.logical + k + n)) {
          ++n;
        }
        if (n >= 2) {
          st.beats.resize(n);
          const Status bulk = channel.read_range(logical, n, st.beats.data());
          if (bulk.is_ok()) {
            for (std::uint64_t j = 0; j < n; ++j) {
              if (st.beats[j] != channel.journal_beat(logical + j)) {
                ++st.report.corrupt_reads;
              }
            }
            st.report.reads += n;
            model_ns += n * kModelDeviceReadNs;
            js_prev = channel.stats().journal_served_reads;
            rc_prev = channel.stats().reconstructed_reads;
            k += n;
            continue;
          }
          if (bulk.code() != StatusCode::kDataLoss &&
              bulk.code() != StatusCode::kUnavailable) {
            st.status = bulk;
            return;
          }
          // Fall through to the per-beat path for escalation handling.
        }
      }

      auto got = do_read(i, logical);
      if (!got.is_ok()) {
        if (st.wants_global) {
          ++st.attempts;
          return;  // re-served after the barrier applies the rung
        }
        if (got.status().code() == StatusCode::kUnavailable) {
          if (absorb_device_loss(channel)) continue;  // journal/stripe next
          st.wants_global = true;
          st.wanted = LadderRung::kPowerCycle;
          return;
        }
        if (got.status().code() != StatusCode::kDataLoss) {
          st.status = got.status();
          return;
        }
        auto rung = channel.escalate();
        if (!rung.is_ok()) {
          st.status = rung.status();
          return;
        }
        ++st.attempts;
        model_ns += kModelEscalateNs;
        const bool over_deadline = st.attempts > r.deadline_attempts;
        const bool budget_left = source.spend_retry(i, r.tenant);
        if (over_deadline || !budget_left) {
          // Deadline blown (or the tenant's retry slice is dry):
          // guaranteed tenants hedge the rest of the run to the journal,
          // best-effort requests are shed mid-serve.
          if (r.hedge) {
            deadline_hedge = true;
            continue;
          }
          dropped = true;
          break;
        }
        if (rung.value() != LadderRung::kCorrect) {
          st.wants_global = true;
          st.wanted = rung.value();
          return;
        }
        continue;  // local correction: retry the same beat now
      }
      if (got.value() != channel.journal_beat(logical)) {
        ++st.report.corrupt_reads;
      }
      ++st.report.reads;
      if (st.attempts > 0) ++st.report.escalated_reads;
      const std::uint64_t js = channel.stats().journal_served_reads;
      const std::uint64_t rc = channel.stats().reconstructed_reads;
      if (rc > rc_prev) {
        model_ns += reconstruct_ns;
      } else if (js > js_prev) {
        model_ns += kModelJournalNs;
      } else {
        model_ns += kModelDeviceReadNs;
      }
      js_prev = js;
      rc_prev = rc;
      ++k;
    }

    source.complete(i, r, dropped ? ServeOutcome::kShed : outcome,
                    st.attempts, model_ns);
    st.report.ops += r.count;
    ++st.cursor;  // next request tick
    served += r.count;
    st.attempts = 0;

    // Consume a burned budget between requests, before a read trips on
    // it; striped writes also settle the parity channel's ladder.
    if (channel.budget().burned() || channel.escalation_pending()) {
      auto rung = channel.escalate();
      if (!rung.is_ok()) {
        st.status = rung.status();
        return;
      }
      if (rung.value() != LadderRung::kCorrect) {
        st.wants_global = true;
        st.wanted = rung.value();
        return;
      }
    }
    if (striped() && wrote_any) {
      const Status settled = settle_parity(group_of(i), st);
      if (!settled.is_ok()) {
        st.status = settled;
        return;
      }
      if (st.wants_global) return;
    }
  }
}

void ServingFleet::serve_group_epoch(std::size_t g) {
  const std::size_t base = g * config_.stripe_width;
  for (std::size_t s = base; s < base + config_.stripe_width; ++s) {
    if (config_.source != nullptr) {
      serve_pc_source_epoch(s);
    } else {
      serve_pc_epoch(s);
    }
  }
  rebuild_step(g);
}

void ServingFleet::rebuild_step(std::size_t g) {
  StripeGroup& grp = groups_[g];
  grp.wants_global = false;
  grp.wanted = LadderRung::kCorrect;
  if (grp.rebuilding == StripeGroup::kIdle && !grp.rebuilding_parity) return;
  ReliableChannel& ch = grp.rebuilding_parity
                            ? *parity_channels_[g]
                            : *channels_[grp.rebuilding];
  const std::uint64_t cap = ch.capacity();
  std::uint64_t budget = config_.rebuild_beats_per_epoch;
  while (budget > 0 && grp.rebuild_cursor < cap) {
    const std::uint64_t cur = grp.rebuild_cursor;
    if (!ch.journal_live(cur)) {
      ++grp.rebuild_cursor;
      continue;
    }
    std::uint64_t end = cur + 1;
    while (end < cap && end - cur < budget && ch.journal_live(end)) ++end;
    // Cross-check the stripe invariant before trusting the journal copy:
    // the rebuilt data must equal what XOR reconstruction would serve.
    for (std::uint64_t l = cur; l < end; ++l) {
      hbm::Beat expect{};
      if (grp.rebuilding_parity) {
        expect = parity_value(g, l);
      } else {
        const ReliableChannel& parity = *parity_channels_[g];
        if (parity.journal_live(l)) xor_into(expect, parity.journal_beat(l));
        const std::size_t base = g * config_.stripe_width;
        for (std::size_t s = base; s < base + config_.stripe_width; ++s) {
          if (s == grp.rebuilding) continue;
          const ReliableChannel& peer = *channels_[s];
          if (peer.journal_live(l)) xor_into(expect, peer.journal_beat(l));
        }
      }
      HBMVOLT_REQUIRE(expect == ch.journal_beat(l),
                      "stripe invariant violated during rebuild");
    }
    const Status rebuilt = ch.rebuild_device_range(cur, end - cur);
    if (!rebuilt.is_ok()) {
      if (rebuilt.code() == StatusCode::kUnavailable) {
        grp.wants_global = true;
        grp.wanted = LadderRung::kPowerCycle;
      } else {
        grp.status = rebuilt;
      }
      return;
    }
    budget -= end - cur;
    grp.rebuild_cursor = end;
  }
  if (grp.rebuild_cursor >= cap) {
    ch.finish_rebuild();
    HBMVOLT_LOG_INFO("runtime: PC %u rebuilt onto spare silicon (%llu beats)",
                     ch.pc_global(),
                     static_cast<unsigned long long>(
                         ch.stats().rebuilt_beats));
    if (auto* tel = telemetry::Telemetry::active()) {
      tel->count("runtime.fleet.rebuild_complete");
    }
    grp.rebuilding = StripeGroup::kIdle;
    grp.rebuilding_parity = false;
    grp.rebuild_cursor = 0;
  }
}

void ServingFleet::claim_spares() {
  if (!striped()) return;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    StripeGroup& grp = groups_[g];
    if (grp.rebuilding != StripeGroup::kIdle || grp.rebuilding_parity) {
      continue;
    }
    if (spare_next_ >= spare_pcs_.size()) return;  // pool dry: stay degraded
    const std::size_t base = g * config_.stripe_width;
    std::size_t victim = StripeGroup::kIdle;
    for (std::size_t s = base; s < base + config_.stripe_width; ++s) {
      if (channels_[s]->device_lost()) {
        victim = s;
        break;
      }
    }
    const bool parity_lost =
        victim == StripeGroup::kIdle && parity_channels_[g]->device_lost();
    if (victim == StripeGroup::kIdle && !parity_lost) continue;
    ReliableChannel& ch =
        parity_lost ? *parity_channels_[g] : *channels_[victim];
    const unsigned spare_pc = spare_pcs_[spare_next_++];
    ch.adopt_device(spare_pc);
    ch.record_ladder(LadderRung::kStripeRebuild);
    grp.rebuilding = victim;
    grp.rebuilding_parity = parity_lost;
    grp.rebuild_cursor = 0;
    HBMVOLT_LOG_INFO("runtime: group %zu adopts spare PC %u for rebuild", g,
                     spare_pc);
  }
}

void ServingFleet::close_epoch(std::uint64_t epoch) {
  // Fleet-wide deltas since the previous barrier, folded in PC index
  // order.  Everything here *reads* channel state the barrier already
  // made deterministic, so the sample stream -- and with it the alert
  // events and health snapshots -- is identical at any thread count and
  // with telemetry on or off.
  telemetry::EpochSample sample;
  sample.epoch = epoch;
  double burn_max = 0.0;
  const char* scheme_name = mitigate::to_string(config_.scheme);
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    ReliableChannel& channel = *channels_[i];
    const ChannelStats& now = channel.stats();
    const ChannelStats& prev = epoch_prev_[i];
    sample.reads += now.reads - prev.reads;
    sample.writes += now.writes - prev.writes;
    sample.corrected += (now.corrected_words + now.corrected_check_words) -
                        (prev.corrected_words + prev.corrected_check_words);
    sample.uncorrectable +=
        now.uncorrectable_blocked - prev.uncorrectable_blocked;
    sample.journal_served +=
        now.journal_served_reads - prev.journal_served_reads;
    sample.reconstructed +=
        now.reconstructed_reads - prev.reconstructed_reads;
    sample.parked += channel.parked_count();
    epoch_prev_[i] = now;

    const ErrorBudget& budget = channel.budget();
    if (budget.window_words() > 0 && budget.config().corrected_slo > 0.0) {
      const double burn = static_cast<double>(budget.window_corrected()) /
                          static_cast<double>(budget.window_words()) /
                          budget.config().corrected_slo;
      if (burn > burn_max) burn_max = burn;
    }
    const char* stripe_state = "-";
    if (striped()) {
      const StripeGroup& grp = groups_[group_of(i)];
      stripe_state = !channel.device_lost()
                         ? "healthy"
                         : (grp.rebuilding == i ? "rebuilding" : "degraded");
    }
    health_.update(i, channel, board_.hbm_voltage(), epoch, scheme_name,
                   stripe_state);
  }
  for (std::size_t g = 0; g < parity_channels_.size(); ++g) {
    const ChannelStats& now = parity_channels_[g]->stats();
    const ChannelStats& prev = parity_prev_[g];
    sample.writes += now.writes - prev.writes;
    sample.corrected += (now.corrected_words + now.corrected_check_words) -
                        (prev.corrected_words + prev.corrected_check_words);
    sample.journal_served +=
        now.journal_served_reads - prev.journal_served_reads;
    parity_prev_[g] = now;
  }
  sample.budget_burn = burn_max;
  if (config_.source != nullptr) {
    // Fold the plane's slot-local accounting (serial, slot order) and let
    // it fill the sample's admitted/shed deltas plus the tenant health
    // rows before the alert tick and the dashboard hook see either.
    config_.source->end_epoch(&sample);
    config_.source->fill_health(&health_);
  }
  alerts_.tick(sample);
  for (auto& channel : channels_) channel->flush_telemetry();
  for (auto& parity : parity_channels_) parity->flush_telemetry();
  if (config_.epoch_hook) {
    config_.epoch_hook(
        EpochStatus{epoch, board_.hbm_voltage(), &health_, &alerts_});
  }
}

Result<FleetReport> ServingFleet::run() {
  FleetReport report;
  report.epochs = base_epochs_;
  report.raises = base_raises_;
  report.power_cycles = base_power_cycles_;
  std::unique_ptr<core::ThreadPool> pool;
  if (config_.threads != 1) {
    pool = std::make_unique<core::ThreadPool>(config_.threads);
  }

  // Epochs bound: the trace (or queued-demand) epochs plus a generous
  // allowance for escalation-interrupted ones (each of those makes ladder
  // progress) and for post-trace rebuild epochs.
  const std::uint64_t trace_epochs =
      config_.source != nullptr
          ? config_.source->epochs_remaining_bound()
          : (config_.ops_per_pc + config_.ops_per_epoch - 1) /
                config_.ops_per_epoch;
  std::uint64_t max_epochs = trace_epochs + 4096;
  if (striped() && !channels_.empty()) {
    max_epochs +=
        channels_[0]->capacity() / config_.rebuild_beats_per_epoch + 1;
  }

  for (;;) {
    bool all_done = true;
    if (config_.source != nullptr) {
      all_done = config_.source->exhausted();
    } else {
      for (std::size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].cursor < traces_[i].size()) {
          all_done = false;
          break;
        }
      }
    }
    // A rebuild in flight keeps the fleet ticking after the traces end:
    // the group workers drain it with no foreground ops in the way.
    for (const StripeGroup& grp : groups_) {
      if (grp.rebuilding != StripeGroup::kIdle || grp.rebuilding_parity) {
        all_done = false;
      }
    }
    if (all_done) break;
    if (report.epochs >= max_epochs) {
      return unavailable("fleet ladder failed to converge");
    }
    ++report.epochs;
    if (config_.source != nullptr) {
      // Serial admission: quotas refill, brownout policy updates from the
      // barrier-time fleet state, and this epoch's requests land on slot
      // queues before any worker runs.
      config_.source->begin_epoch(*this, report.epochs);
    }

    if (striped()) {
      core::parallel_for_each(pool.get(), groups_.size(),
                              [this](std::size_t g) { serve_group_epoch(g); });
    } else {
      core::parallel_for_each(pool.get(), states_.size(),
                              [this](std::size_t i) {
                                if (config_.source != nullptr) {
                                  serve_pc_source_epoch(i);
                                } else {
                                  serve_pc_epoch(i);
                                }
                              });
    }

    // Serial aggregation and global ladder actions, in PC index order.
    bool want_cycle = false;
    bool want_raise = false;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      PcState& st = states_[i];
      if (!st.status.is_ok()) return st.status;
      if (!st.wants_global) continue;
      if (st.wanted == LadderRung::kPowerCycle) want_cycle = true;
      if (st.wanted == LadderRung::kRaiseVoltage) want_raise = true;
    }
    for (StripeGroup& grp : groups_) {
      if (!grp.status.is_ok()) return grp.status;
      if (!grp.wants_global) continue;
      if (grp.wanted == LadderRung::kPowerCycle) want_cycle = true;
      if (grp.wanted == LadderRung::kRaiseVoltage) want_raise = true;
    }
    if (want_cycle || !board_.responding()) {
      HBMVOLT_RETURN_IF_ERROR(board_.power_cycle());
      for (auto& channel : channels_) {
        HBMVOLT_RETURN_IF_ERROR(channel->restore_after_power_cycle());
      }
      for (auto& parity : parity_channels_) {
        HBMVOLT_RETURN_IF_ERROR(parity->restore_after_power_cycle());
      }
      // The cycle scrambled any partially rebuilt spare (device-lost
      // channels skip the journal rewrite): restart those rebuilds.
      for (StripeGroup& grp : groups_) {
        if (grp.rebuilding != StripeGroup::kIdle || grp.rebuilding_parity) {
          grp.rebuild_cursor = 0;
        }
      }
      ++report.power_cycles;
      if (auto* tel = telemetry::Telemetry::active()) {
        tel->count("runtime.fleet.power_cycle");
      }
    } else if (want_raise) {
      const Millivolts nominal =
          board_.config().regulator_config.vout_default;
      Millivolts next{board_.hbm_voltage().value +
                      config_.channel.raise_step_mv};
      if (next > nominal) next = nominal;
      HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(next));
      for (auto& channel : channels_) {
        channel->on_global_action(LadderRung::kRaiseVoltage);
      }
      for (auto& parity : parity_channels_) {
        parity->on_global_action(LadderRung::kRaiseVoltage);
      }
      ++report.raises;
      if (auto* tel = telemetry::Telemetry::active()) {
        tel->count("runtime.fleet.raise");
      }
    }
    claim_spares();
    close_epoch(report.epochs);
    if (config_.halt_after_epochs > 0 &&
        report.epochs >= config_.halt_after_epochs) {
      base_epochs_ = report.epochs;
      base_raises_ = report.raises;
      base_power_cycles_ = report.power_cycles;
      for (const PcState& st : states_) {
        report.ops += st.report.ops;
        report.reads += st.report.reads;
        report.writes += st.report.writes;
        report.corrupt_reads += st.report.corrupt_reads;
        report.escalated_reads += st.report.escalated_reads;
      }
      report.final_voltage = board_.hbm_voltage();
      report.halted = true;
      return report;
    }
  }

  // Fold the run into the report, in PC index order.
  std::uint64_t fp = mix_seed(config_.seed, 0xF17);
  std::uint64_t dfp = mix_seed(config_.seed, 0xDA7AF17);
  auto fold_channel = [&fp](const ReliableChannel& channel) {
    const ChannelStats& cs = channel.stats();
    fp = mix_seed(fp, cs.corrected_words);
    fp = mix_seed(fp, cs.corrected_check_words);
    fp = mix_seed(fp, cs.uncorrectable_blocked);
    fp = mix_seed(fp, cs.rows_retired);
    fp = mix_seed(fp, cs.beats_migrated);
    fp = mix_seed(fp, cs.journal_migrations);
    fp = mix_seed(fp, cs.beats_parked);
    fp = mix_seed(fp, cs.verify_caught);
    fp = mix_seed(fp, cs.journal_refreshes);
    fp = mix_seed(fp, cs.journal_served_reads);
    fp = mix_seed(fp, cs.reconstructed_reads);
    fp = mix_seed(fp, cs.rebuilt_beats);
    fp = mix_seed(fp, cs.scrub_beats);
    fp = mix_seed(fp, cs.scrub_corrected);
    fp = mix_seed(fp, cs.scrub_uncorrectable);
    fp = mix_seed(fp, cs.scrub_blocks_skipped);
    for (const LadderEvent& event : channel.ladder_trace()) {
      fp = mix_seed(fp, static_cast<std::uint64_t>(event.rung));
      fp = mix_seed(fp, static_cast<std::uint64_t>(event.voltage.value));
      fp = mix_seed(fp, event.op);
    }
    for (std::uint64_t beat = 0; beat < channel.capacity(); ++beat) {
      if (!channel.journal_live(beat)) continue;
      const hbm::Beat& data = channel.journal_beat(beat);
      for (unsigned w = 0; w < 4; ++w) fp = mix_seed(fp, data[w]);
    }
  };
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const PcState& st = states_[i];
    const ReliableChannel& channel = *channels_[i];
    report.ops += st.report.ops;
    report.reads += st.report.reads;
    report.writes += st.report.writes;
    report.corrupt_reads += st.report.corrupt_reads;
    report.escalated_reads += st.report.escalated_reads;
    report.reconstructed_reads += channel.stats().reconstructed_reads;
    report.rebuilt_beats += channel.stats().rebuilt_beats;

    fp = mix_seed(fp, config_.pcs[i]);
    fp = mix_seed(fp, st.report.reads);
    fp = mix_seed(fp, st.report.writes);
    fp = mix_seed(fp, st.report.corrupt_reads);
    fp = mix_seed(fp, st.report.escalated_reads);
    fold_channel(channel);

    // Data-only fold: the slot identity (stable across spare adoption),
    // the served op counts, and the journal contents.  Ladder traces,
    // voltages, and device-side stats are deliberately absent -- this is
    // the fingerprint that must survive chaos on/off.
    dfp = mix_seed(dfp, i);
    dfp = mix_seed(dfp, st.report.reads);
    dfp = mix_seed(dfp, st.report.writes);
    dfp = mix_seed(dfp, st.report.corrupt_reads);
    for (std::uint64_t beat = 0; beat < channel.capacity(); ++beat) {
      if (!channel.journal_live(beat)) continue;
      const hbm::Beat& data = channel.journal_beat(beat);
      dfp = mix_seed(dfp, beat);
      for (unsigned w = 0; w < 4; ++w) dfp = mix_seed(dfp, data[w]);
    }
  }
  for (std::size_t g = 0; g < parity_channels_.size(); ++g) {
    const ReliableChannel& parity = *parity_channels_[g];
    report.rebuilt_beats += parity.stats().rebuilt_beats;
    fp = mix_seed(fp, 0x9A817 + g);
    fold_channel(parity);
  }
  report.final_voltage = board_.hbm_voltage();
  fp = mix_seed(fp, static_cast<std::uint64_t>(report.final_voltage.value));
  fp = mix_seed(fp, report.raises);
  fp = mix_seed(fp, report.power_cycles);
  if (config_.source != nullptr) {
    report.tenant_fingerprint = config_.source->fingerprint();
    fp = mix_seed(fp, report.tenant_fingerprint);
  }
  report.fingerprint = fp;
  report.data_fingerprint = dfp;
  return report;
}

// ---- Checkpoint seam ----

FleetCheckpoint ServingFleet::checkpoint() const {
  FleetCheckpoint ck;
  ck.epochs = base_epochs_;
  ck.raises = base_raises_;
  ck.power_cycles = base_power_cycles_;
  ck.voltage_mv = board_.hbm_voltage().value;
  const hbm::HbmGeometry& geometry = board_.geometry();
  const unsigned total = geometry.total_pcs();
  ck.burst_extras.resize(total);
  ck.array_words.resize(total);
  for (unsigned pc = 0; pc < total; ++pc) {
    const hbm::PcId id = hbm::PcId::from_global(geometry, pc);
    hbm::HbmStack& stack = board_.stack(id.stack);
    if (stack.pc_killed(id.index)) ck.killed_pcs.push_back(pc);
    ck.burst_extras[pc] = {
        board_.injector().burst_extra(pc, faults::StuckPolarity::kStuckAt0),
        board_.injector().burst_extra(pc, faults::StuckPolarity::kStuckAt1)};
    const std::span<const std::uint64_t> words =
        stack.array(id.index).words();
    ck.array_words[pc].assign(words.begin(), words.end());
  }
  ck.slots.resize(states_.size());
  ck.channels.resize(channels_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    ck.slots[i] = {states_[i].cursor, states_[i].storm_next,
                   states_[i].attempts, states_[i].report};
    channels_[i]->capture(&ck.channels[i]);
  }
  ck.parity.resize(parity_channels_.size());
  for (std::size_t g = 0; g < parity_channels_.size(); ++g) {
    parity_channels_[g]->capture(&ck.parity[g]);
  }
  ck.groups.resize(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    ck.groups[g] = {groups_[g].rebuilding, groups_[g].rebuilding_parity,
                    groups_[g].rebuild_cursor};
  }
  ck.spare_next = spare_next_;
  return ck;
}

Status ServingFleet::restore(const FleetCheckpoint& ck) {
  const hbm::HbmGeometry& geometry = board_.geometry();
  const unsigned total = geometry.total_pcs();
  if (ck.slots.size() != states_.size() ||
      ck.channels.size() != channels_.size() ||
      ck.parity.size() != parity_channels_.size() ||
      ck.groups.size() != groups_.size() ||
      ck.array_words.size() != total) {
    return invalid_argument("fleet checkpoint shape mismatch");
  }
  base_epochs_ = ck.epochs;
  base_raises_ = ck.raises;
  base_power_cycles_ = ck.power_cycles;
  // Board first: voltage (overlays re-derive from it), burst extras, PC
  // kills, then the raw written bits underneath all of that.
  HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(Millivolts{ck.voltage_mv}));
  for (unsigned pc = 0; pc < total; ++pc) {
    const auto& [sa0, sa1] = ck.burst_extras[pc];
    if (sa0 != 0 || sa1 != 0) board_.injector().add_burst(pc, sa0, sa1);
  }
  for (const unsigned pc : ck.killed_pcs) {
    const hbm::PcId id = hbm::PcId::from_global(geometry, pc);
    board_.stack(id.stack).kill_pc(id.index);
  }
  for (unsigned pc = 0; pc < total; ++pc) {
    const hbm::PcId id = hbm::PcId::from_global(geometry, pc);
    hbm::MemoryArray& array = board_.stack(id.stack).array(id.index);
    if (ck.array_words[pc].size() != array.bits() / 64) {
      return invalid_argument("fleet checkpoint array size mismatch");
    }
    array.write_words(0, ck.array_words[pc].size(),
                      ck.array_words[pc].data());
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    channels_[i]->restore(ck.channels[i]);
    states_[i].cursor = ck.slots[i].cursor;
    states_[i].storm_next = ck.slots[i].storm_next;
    states_[i].attempts = ck.slots[i].attempts;
    states_[i].report = ck.slots[i].report;
    // Barrier deltas restart from the restored stats (observers only --
    // the alert ring is not checkpointed, see FleetCheckpoint).
    epoch_prev_[i] = channels_[i]->stats();
  }
  for (std::size_t g = 0; g < parity_channels_.size(); ++g) {
    parity_channels_[g]->restore(ck.parity[g]);
    parity_prev_[g] = parity_channels_[g]->stats();
  }
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    groups_[g].rebuilding = ck.groups[g].rebuilding;
    groups_[g].rebuilding_parity = ck.groups[g].rebuilding_parity;
    groups_[g].rebuild_cursor = ck.groups[g].rebuild_cursor;
  }
  spare_next_ = ck.spare_next;
  return Status::ok();
}

}  // namespace hbmvolt::runtime
