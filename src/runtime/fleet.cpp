#include "runtime/fleet.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/parallel.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::runtime {
namespace {

/// The fleet's standing rules when the caller supplies none: page when
/// the corrected rate burns the channel budget's own SLO, and when reads
/// start leaking into the host journal faster than 1% -- both with a
/// sharp fast window and a calmer slow window (see telemetry/alerts.hpp).
std::vector<telemetry::AlertRule> resolve_rules(const FleetConfig& config) {
  if (!config.alert_rules.empty()) return config.alert_rules;
  return {
      {"corrected_burn", telemetry::AlertSignal::kCorrectedRate,
       config.channel.budget.corrected_slo, 1, 4.0, 4, 1.0},
      {"journal_served", telemetry::AlertSignal::kJournalServedRate, 0.01, 1,
       4.0, 4, 1.0},
  };
}

}  // namespace

ServingFleet::ServingFleet(board::Vcu128Board& board, FleetConfig config)
    : board_(board),
      config_(std::move(config)),
      alerts_(resolve_rules(config_)) {
  HBMVOLT_REQUIRE(config_.ops_per_epoch > 0, "epoch must serve ops");
  if (config_.pcs.empty()) {
    for (unsigned pc = 0; pc < board_.geometry().total_pcs(); ++pc) {
      config_.pcs.push_back(pc);
    }
  }
  channels_.reserve(config_.pcs.size());
  traces_.reserve(config_.pcs.size());
  for (const unsigned pc : config_.pcs) {
    channels_.push_back(
        std::make_unique<ReliableChannel>(board_, pc, config_.channel));
    traces_.push_back(workload::make_uniform_random(
        channels_.back()->capacity(), config_.ops_per_pc,
        config_.write_fraction, stream_seed(config_.seed, 0xF1EE7, pc, 0)));
  }
  states_.resize(config_.pcs.size());
  epoch_prev_.resize(config_.pcs.size());
  health_.reset(config_.pcs.size());
}

void ServingFleet::serve_pc_epoch(std::size_t i) {
  ReliableChannel& channel = *channels_[i];
  const workload::AccessTrace& trace = traces_[i];
  const unsigned pc = config_.pcs[i];
  PcState& st = states_[i];
  st.wants_global = false;
  st.wanted = LadderRung::kCorrect;
  const std::uint64_t data_seed = mix_seed(config_.seed, 0xDA7A);

  std::uint64_t served = 0;
  while (st.cursor < trace.size() && served < config_.ops_per_epoch) {
    if (config_.storm_hook && st.cursor >= st.storm_next) {
      const bool alarm = config_.storm_hook(pc, st.cursor);
      st.storm_next = st.cursor + 1;
      if (alarm) {
        // Environmental alarm: flush soft state and expose any word the
        // storm armed before SECDED can miscorrect it (see
        // refresh_from_journal).
        const Status refreshed = channel.refresh_from_journal();
        if (!refreshed.is_ok()) {
          if (refreshed.code() == StatusCode::kUnavailable) {
            st.wants_global = true;
            st.wanted = LadderRung::kPowerCycle;
            return;
          }
          st.status = refreshed;
          return;
        }
        if (channel.escalation_pending()) {
          auto rung = channel.escalate();
          if (!rung.is_ok()) {
            st.status = rung.status();
            return;
          }
          if (rung.value() != LadderRung::kCorrect) {
            st.wants_global = true;
            st.wanted = rung.value();
            return;
          }
        }
      }
    }
    const workload::TraceRecord& record = trace[st.cursor];
    const std::uint64_t logical = record.beat % channel.capacity();
    const bool write_op = record.write || !channel.journal_live(logical);

    // Coalesce a maximal run of consecutive-beat, same-direction records
    // into one bulk call -- the range fast path.  A storm hook pins the
    // loop to per-op granularity (the hook must fire before every op),
    // and a bulk call that hits the ladder falls back to the per-op
    // machinery below without consuming the cursor.
    if (!config_.storm_hook) {
      const std::uint64_t run_budget =
          std::min<std::uint64_t>(trace.size() - st.cursor,
                                  config_.ops_per_epoch - served);
      std::uint64_t n = 1;
      while (n < run_budget) {
        const workload::TraceRecord& r2 = trace[st.cursor + n];
        const std::uint64_t l2 = r2.beat % channel.capacity();
        if (l2 != logical + n) break;
        const bool w2 = r2.write || !channel.journal_live(l2);
        if (w2 != write_op) break;
        ++n;
      }
      if (n >= 2) {
        Status st_bulk = Status::ok();
        if (write_op) {
          st.beats.resize(n);
          for (std::uint64_t k = 0; k < n; ++k) {
            st.beats[k] = make_payload(data_seed, pc, st.cursor + k);
          }
          st_bulk = channel.write_range(logical, n, st.beats.data());
          if (st_bulk.is_ok()) st.report.writes += n;
        } else {
          st.beats.resize(n);
          st_bulk = channel.read_range(logical, n, st.beats.data());
          if (st_bulk.is_ok()) {
            for (std::uint64_t k = 0; k < n; ++k) {
              if (st.beats[k] != channel.journal_beat(logical + k)) {
                ++st.report.corrupt_reads;
              }
            }
            st.report.reads += n;
          }
        }
        if (st_bulk.is_ok()) {
          st.report.ops += n;
          st.cursor += n;
          served += n;
          st.attempts = 0;
          if (channel.budget().burned() || channel.escalation_pending()) {
            auto rung = channel.escalate();
            if (!rung.is_ok()) {
              st.status = rung.status();
              return;
            }
            if (rung.value() != LadderRung::kCorrect) {
              st.wants_global = true;
              st.wanted = rung.value();
              return;
            }
          }
          continue;
        }
        if (st_bulk.code() != StatusCode::kDataLoss &&
            st_bulk.code() != StatusCode::kUnavailable) {
          st.status = st_bulk;
          return;
        }
        // Fall through: the per-op path re-serves the run from its start
        // and applies the usual escalate-and-retry handling.
      }
    }

    if (write_op) {
      const Status wrote =
          channel.write(logical, make_payload(data_seed, pc, st.cursor));
      if (!wrote.is_ok()) {
        if (wrote.code() == StatusCode::kUnavailable) {
          // Crashed stack: request rung 3 and end the epoch; the op is
          // retried after the barrier's power-cycle + restore.
          ++st.attempts;
          st.wants_global = true;
          st.wanted = LadderRung::kPowerCycle;
          return;
        }
        st.status = wrote;
        return;
      }
      ++st.report.writes;
    } else {
      auto got = channel.read(logical);
      if (!got.is_ok()) {
        if (++st.attempts > 64) {
          st.status = got.status();
          return;
        }
        if (got.status().code() == StatusCode::kUnavailable) {
          st.wants_global = true;
          st.wanted = LadderRung::kPowerCycle;
          return;
        }
        if (got.status().code() != StatusCode::kDataLoss) {
          st.status = got.status();
          return;
        }
        auto rung = channel.escalate();
        if (!rung.is_ok()) {
          st.status = rung.status();
          return;
        }
        if (rung.value() == LadderRung::kCorrect) continue;  // retry now
        st.wants_global = true;
        st.wanted = rung.value();
        return;  // retried after the barrier applies the global rung
      }
      if (got.value() != channel.journal_beat(logical)) {
        ++st.report.corrupt_reads;
      }
      ++st.report.reads;
      if (st.attempts > 0) ++st.report.escalated_reads;
    }
    ++st.report.ops;
    ++st.cursor;
    ++served;
    st.attempts = 0;

    // Consume a burned budget between ops, before a read trips on it.
    if (channel.budget().burned() || channel.escalation_pending()) {
      auto rung = channel.escalate();
      if (!rung.is_ok()) {
        st.status = rung.status();
        return;
      }
      if (rung.value() != LadderRung::kCorrect) {
        st.wants_global = true;
        st.wanted = rung.value();
        return;
      }
    }
  }
}

void ServingFleet::close_epoch(std::uint64_t epoch) {
  // Fleet-wide deltas since the previous barrier, folded in PC index
  // order.  Everything here *reads* channel state the barrier already
  // made deterministic, so the sample stream -- and with it the alert
  // events and health snapshots -- is identical at any thread count and
  // with telemetry on or off.
  telemetry::EpochSample sample;
  sample.epoch = epoch;
  double burn_max = 0.0;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const ReliableChannel& channel = *channels_[i];
    const ChannelStats& now = channel.stats();
    const ChannelStats& prev = epoch_prev_[i];
    sample.reads += now.reads - prev.reads;
    sample.writes += now.writes - prev.writes;
    sample.corrected += (now.corrected_words + now.corrected_check_words) -
                        (prev.corrected_words + prev.corrected_check_words);
    sample.uncorrectable +=
        now.uncorrectable_blocked - prev.uncorrectable_blocked;
    sample.journal_served +=
        now.journal_served_reads - prev.journal_served_reads;
    sample.parked += channel.parked_count();
    epoch_prev_[i] = now;

    const ErrorBudget& budget = channel.budget();
    if (budget.window_words() > 0 && budget.config().corrected_slo > 0.0) {
      const double burn = static_cast<double>(budget.window_corrected()) /
                          static_cast<double>(budget.window_words()) /
                          budget.config().corrected_slo;
      if (burn > burn_max) burn_max = burn;
    }
    health_.update(i, channel, board_.hbm_voltage(), epoch);
  }
  sample.budget_burn = burn_max;
  alerts_.tick(sample);
  for (auto& channel : channels_) channel->flush_telemetry();
  if (config_.epoch_hook) {
    config_.epoch_hook(
        EpochStatus{epoch, board_.hbm_voltage(), &health_, &alerts_});
  }
}

Result<FleetReport> ServingFleet::run() {
  FleetReport report;
  std::unique_ptr<core::ThreadPool> pool;
  if (config_.threads != 1) {
    pool = std::make_unique<core::ThreadPool>(config_.threads);
  }

  // Epochs bound: the trace epochs plus a generous allowance for
  // escalation-interrupted ones (each of those makes ladder progress).
  const std::uint64_t trace_epochs =
      (config_.ops_per_pc + config_.ops_per_epoch - 1) /
      config_.ops_per_epoch;
  const std::uint64_t max_epochs = trace_epochs + 4096;

  for (;;) {
    bool all_done = true;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i].cursor < traces_[i].size()) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    if (report.epochs >= max_epochs) {
      return unavailable("fleet ladder failed to converge");
    }
    ++report.epochs;

    core::parallel_for_each(pool.get(), states_.size(),
                            [this](std::size_t i) { serve_pc_epoch(i); });

    // Serial aggregation and global ladder actions, in PC index order.
    bool want_cycle = false;
    bool want_raise = false;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      PcState& st = states_[i];
      if (!st.status.is_ok()) return st.status;
      if (!st.wants_global) continue;
      if (st.wanted == LadderRung::kPowerCycle) want_cycle = true;
      if (st.wanted == LadderRung::kRaiseVoltage) want_raise = true;
    }
    if (want_cycle || !board_.responding()) {
      HBMVOLT_RETURN_IF_ERROR(board_.power_cycle());
      for (auto& channel : channels_) {
        HBMVOLT_RETURN_IF_ERROR(channel->restore_after_power_cycle());
      }
      ++report.power_cycles;
      if (auto* tel = telemetry::Telemetry::active()) {
        tel->count("runtime.fleet.power_cycle");
      }
    } else if (want_raise) {
      const Millivolts nominal =
          board_.config().regulator_config.vout_default;
      Millivolts next{board_.hbm_voltage().value +
                      config_.channel.raise_step_mv};
      if (next > nominal) next = nominal;
      HBMVOLT_RETURN_IF_ERROR(board_.set_hbm_voltage(next));
      for (auto& channel : channels_) {
        channel->on_global_action(LadderRung::kRaiseVoltage);
      }
      ++report.raises;
      if (auto* tel = telemetry::Telemetry::active()) {
        tel->count("runtime.fleet.raise");
      }
    }
    close_epoch(report.epochs);
  }

  // Fold the run into the report, in PC index order.
  std::uint64_t fp = mix_seed(config_.seed, 0xF17);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const PcState& st = states_[i];
    const ReliableChannel& channel = *channels_[i];
    report.ops += st.report.ops;
    report.reads += st.report.reads;
    report.writes += st.report.writes;
    report.corrupt_reads += st.report.corrupt_reads;
    report.escalated_reads += st.report.escalated_reads;

    fp = mix_seed(fp, config_.pcs[i]);
    fp = mix_seed(fp, st.report.reads);
    fp = mix_seed(fp, st.report.writes);
    fp = mix_seed(fp, st.report.corrupt_reads);
    fp = mix_seed(fp, st.report.escalated_reads);
    const ChannelStats& cs = channel.stats();
    fp = mix_seed(fp, cs.corrected_words);
    fp = mix_seed(fp, cs.corrected_check_words);
    fp = mix_seed(fp, cs.uncorrectable_blocked);
    fp = mix_seed(fp, cs.rows_retired);
    fp = mix_seed(fp, cs.beats_migrated);
    fp = mix_seed(fp, cs.journal_migrations);
    fp = mix_seed(fp, cs.beats_parked);
    fp = mix_seed(fp, cs.verify_caught);
    fp = mix_seed(fp, cs.journal_refreshes);
    fp = mix_seed(fp, cs.journal_served_reads);
    fp = mix_seed(fp, cs.scrub_beats);
    fp = mix_seed(fp, cs.scrub_corrected);
    fp = mix_seed(fp, cs.scrub_uncorrectable);
    fp = mix_seed(fp, cs.scrub_blocks_skipped);
    for (const LadderEvent& event : channel.ladder_trace()) {
      fp = mix_seed(fp, static_cast<std::uint64_t>(event.rung));
      fp = mix_seed(fp, static_cast<std::uint64_t>(event.voltage.value));
      fp = mix_seed(fp, event.op);
    }
    for (std::uint64_t beat = 0; beat < channel.capacity(); ++beat) {
      if (!channel.journal_live(beat)) continue;
      const hbm::Beat& data = channel.journal_beat(beat);
      for (unsigned w = 0; w < 4; ++w) fp = mix_seed(fp, data[w]);
    }
  }
  report.final_voltage = board_.hbm_voltage();
  fp = mix_seed(fp, static_cast<std::uint64_t>(report.final_voltage.value));
  fp = mix_seed(fp, report.raises);
  fp = mix_seed(fp, report.power_cycles);
  report.fingerprint = fp;
  return report;
}

}  // namespace hbmvolt::runtime
