// Register-level model of the Xilinx HBM IP core's APB configuration and
// status port (the interface host logic uses on the real XCVU37P).
//
// The real IP exposes initialization status, the switch configuration,
// and device DRPs including the stack temperature sensor and the
// catastrophic-temperature (CATTRIP) flag.  This model maps the same
// functions onto one stack's controller so host-side code exercises a
// realistic bring-up sequence: poll INIT_DONE, program SWITCH/PORT
// enables, watch STATUS during experiments.
//
// Register map (word offsets):
//   0x00 ID          RO  0x48424D32 ("HBM2")
//   0x04 CTRL        RW  bit0 switch_enable, bit1 soft_reset (self-clears)
//   0x08 STATUS      RO  bit0 init_done, bit1 cattrip, bit2 all_responding
//   0x0C PORT_ENABLE RW  one bit per AXI port of the stack
//   0x10 TEMPERATURE RO  stack temperature, degrees C (DRP readout)
//   0x14 SLVERR_CNT  RO  summed AXI error responses across ports
//   0x18 BEAT_CNT_LO RO  total beats moved (low word)
//   0x1C BEAT_CNT_HI RO  total beats moved (high word)

#pragma once

#include <cstdint>

#include "axi/controller.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace hbmvolt::hbm {

class HbmIpCore {
 public:
  static constexpr std::uint32_t kRegId = 0x00;
  static constexpr std::uint32_t kRegCtrl = 0x04;
  static constexpr std::uint32_t kRegStatus = 0x08;
  static constexpr std::uint32_t kRegPortEnable = 0x0C;
  static constexpr std::uint32_t kRegTemperature = 0x10;
  static constexpr std::uint32_t kRegSlverrCount = 0x14;
  static constexpr std::uint32_t kRegBeatCountLo = 0x18;
  static constexpr std::uint32_t kRegBeatCountHi = 0x1C;

  static constexpr std::uint32_t kIdValue = 0x48424D32;  // "HBM2"
  static constexpr std::uint32_t kCtrlSwitchEnable = 1u << 0;
  static constexpr std::uint32_t kCtrlSoftReset = 1u << 1;
  static constexpr std::uint32_t kStatusInitDone = 1u << 0;
  static constexpr std::uint32_t kStatusCattrip = 1u << 1;
  static constexpr std::uint32_t kStatusResponding = 1u << 2;

  /// CATTRIP asserts at this stack temperature (JESD235: ~105 degC).
  static constexpr double kCattripCelsius = 105.0;

  HbmIpCore(axi::StackController& controller, Celsius temperature);

  Result<std::uint32_t> read(std::uint32_t offset);
  Status write(std::uint32_t offset, std::uint32_t value);

  void set_temperature(Celsius temperature) noexcept {
    temperature_ = temperature;
  }

 private:
  axi::StackController& controller_;
  Celsius temperature_;
};

}  // namespace hbmvolt::hbm
