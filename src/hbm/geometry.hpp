// HBM organization and address decomposition.
//
// Mirrors the paper's platform (Fig 1b): the XCVU37P carries two HBM
// stacks; each stack exposes 8 memory channels (MCs) of 128 b, each split
// into two independent 64 b pseudo-channels (PCs) -- 16 PCs per stack, 32
// total.  Each AXI port is 256 b wide and maps 1:1 onto a PC; one AXI beat
// corresponds to one 32 B DRAM column access (64 b PC x burst length 4).
//
// Capacity is parameterized: the real board has 2^31 bits (256 MB) per PC;
// the default simulated geometry uses a reduced array so full sweeps run
// in seconds, while fault *counts* near the onset voltage are
// capacity-independent by model construction (see faults/fault_model.hpp).

#pragma once

#include <cstdint>

#include "common/status.hpp"

namespace hbmvolt::hbm {

struct HbmGeometry {
  unsigned stacks = 2;
  unsigned channels_per_stack = 8;   // memory channels (MCs)
  unsigned pcs_per_channel = 2;      // pseudo-channels per MC

  /// Simulated bits per pseudo-channel.  Real hardware: 1ull << 31.
  std::uint64_t bits_per_pc = 1ull << 19;

  /// One AXI beat = one column access.
  unsigned bits_per_beat = 256;

  // Internal DRAM organization used for spatial analyses (fault
  // clustering per bank/row).  Real HBM2: 16 banks, 2 KB rows; the scaled
  // defaults keep several rows per bank at small simulated capacities.
  unsigned banks_per_pc = 4;
  unsigned beats_per_row = 16;       // columns (beats) in one row

  [[nodiscard]] constexpr unsigned pcs_per_stack() const noexcept {
    return channels_per_stack * pcs_per_channel;
  }
  [[nodiscard]] unsigned total_pcs() const noexcept {
    return stacks * pcs_per_stack();
  }
  [[nodiscard]] std::uint64_t beats_per_pc() const noexcept {
    return bits_per_pc / bits_per_beat;
  }
  [[nodiscard]] std::uint64_t bits_per_stack() const noexcept {
    return bits_per_pc * pcs_per_stack();
  }
  [[nodiscard]] std::uint64_t total_bits() const noexcept {
    return bits_per_stack() * stacks;
  }
  [[nodiscard]] std::uint64_t rows_per_bank() const noexcept {
    return beats_per_pc() / (static_cast<std::uint64_t>(banks_per_pc) *
                             beats_per_row);
  }

  /// Validates divisibility constraints; call after hand-editing fields.
  [[nodiscard]] Status validate() const;

  /// The real VCU128 geometry (2 x 4 GB stacks, 256 MB per PC).
  [[nodiscard]] static HbmGeometry vcu128();
  /// Reduced geometry for fast simulation (default).
  [[nodiscard]] static HbmGeometry simulation_default();
  /// Tiny geometry for unit tests.
  [[nodiscard]] static HbmGeometry test_tiny();
};

/// Identifies a pseudo-channel globally (0..31) or structurally.
struct PcId {
  unsigned stack = 0;     // 0..stacks-1
  unsigned index = 0;     // PC index within the stack, 0..15

  [[nodiscard]] constexpr unsigned global(const HbmGeometry& g) const noexcept {
    return stack * g.pcs_per_stack() + index;
  }
  [[nodiscard]] static constexpr PcId from_global(const HbmGeometry& g,
                                                  unsigned global) noexcept {
    return PcId{global / g.pcs_per_stack(), global % g.pcs_per_stack()};
  }
  [[nodiscard]] constexpr unsigned channel(const HbmGeometry& g) const noexcept {
    return index / g.pcs_per_channel;
  }
  friend constexpr bool operator==(PcId, PcId) = default;
};

/// Physical location of one beat inside a PC's DRAM array.
struct BeatLocation {
  unsigned bank = 0;
  std::uint64_t row = 0;
  unsigned column = 0;   // beat within the row
};

/// Decomposes a linear beat index: column bits lowest, then bank, then row
/// (column-interleaved banks, the mapping Xilinx's HBM IP defaults to).
[[nodiscard]] BeatLocation decompose_beat(const HbmGeometry& g,
                                          std::uint64_t beat) noexcept;

/// Inverse of decompose_beat.
[[nodiscard]] std::uint64_t compose_beat(const HbmGeometry& g,
                                         const BeatLocation& loc) noexcept;

}  // namespace hbmvolt::hbm
