#include "hbm/stack.hpp"

#include "common/rng.hpp"

namespace hbmvolt::hbm {

HbmStack::HbmStack(const HbmGeometry& geometry, unsigned stack_index,
                   faults::FaultInjector& injector, std::uint64_t seed)
    : geometry_(geometry),
      index_(stack_index),
      injector_(injector),
      seed_(seed) {
  HBMVOLT_REQUIRE(stack_index < geometry.stacks, "stack index out of range");
  arrays_.reserve(geometry_.pcs_per_stack());
  for (unsigned pc = 0; pc < geometry_.pcs_per_stack(); ++pc) {
    arrays_.push_back(std::make_unique<MemoryArray>(
        geometry_.bits_per_pc, mix_seed(seed_, 0xA22A0 + pc)));
  }
  killed_.assign(geometry_.pcs_per_stack(), false);
}

void HbmStack::on_voltage_change(Millivolts v) {
  voltage_ = v;
  if (v.value <= 0) {
    if (state_ != State::kPoweredOff) {
      state_ = State::kPoweredOff;
      // DRAM loses its contents without power.
      for (unsigned pc = 0; pc < arrays_.size(); ++pc) {
        arrays_[pc]->scramble(mix_seed(seed_, 0xDEAD0 + pc));
      }
    }
    return;
  }
  if (injector_.model().is_crash_voltage(v)) {
    state_ = State::kCrashed;  // restoring voltage will not recover it
    return;
  }
  if (state_ == State::kPoweredOff) {
    state_ = State::kOperational;  // power-up restart
  }
  // A crashed stack stays crashed until a power cycle.
}

Status HbmStack::check_access(unsigned pc_local, std::uint64_t beat) const {
  switch (state_) {
    case State::kCrashed:
      return unavailable("HBM stack crashed; power cycle required");
    case State::kPoweredOff:
      return unavailable("HBM stack is powered off");
    case State::kOperational:
      break;
  }
  if (pc_local >= geometry_.pcs_per_stack()) {
    return out_of_range("pseudo-channel index out of range");
  }
  if (killed_[pc_local]) {
    return unavailable("pseudo-channel killed; not recoverable in place");
  }
  if (beat >= geometry_.beats_per_pc()) {
    return out_of_range("beat address beyond PC capacity");
  }
  return Status::ok();
}

Status HbmStack::write_beat(unsigned pc_local, std::uint64_t beat,
                            const Beat& data) {
  HBMVOLT_RETURN_IF_ERROR(check_access(pc_local, beat));
  arrays_[pc_local]->write_beat(beat, data);
  return Status::ok();
}

Result<Beat> HbmStack::read_beat(unsigned pc_local, std::uint64_t beat) {
  const Status access = check_access(pc_local, beat);
  if (!access.is_ok()) return access;
  Beat data = arrays_[pc_local]->read_beat(beat);
  injector_.overlay(global_pc(pc_local)).apply(beat, data);
  return data;
}

Status HbmStack::check_range(unsigned pc_local, std::uint64_t start_beat,
                             std::uint64_t beats) const {
  HBMVOLT_RETURN_IF_ERROR(check_access(pc_local, start_beat));
  if (beats == 0 || beats > geometry_.beats_per_pc() - start_beat) {
    return out_of_range("beat range beyond PC capacity");
  }
  return Status::ok();
}

Status HbmStack::write_range(unsigned pc_local, std::uint64_t start_beat,
                             std::uint64_t beats, const WordPattern& pattern) {
  HBMVOLT_RETURN_IF_ERROR(check_range(pc_local, start_beat, beats));
  arrays_[pc_local]->fill_range(start_beat, beats, pattern);
  return Status::ok();
}

Result<RangeFlips> HbmStack::read_verify_range(
    unsigned pc_local, std::uint64_t start_beat, std::uint64_t beats,
    const WordPattern& pattern, bool after_matching_write,
    std::uint64_t* diff_out) {
  const Status access = check_range(pc_local, start_beat, beats);
  if (!access.is_ok()) return access;
  const faults::FaultOverlay& overlay = injector_.overlay(global_pc(pc_local));
  if (after_matching_write) {
    return overlay.verify_after_fill(start_beat, beats, pattern, diff_out);
  }
  if (overlay.empty()) {
    return arrays_[pc_local]->compare_range(start_beat, beats, pattern,
                                            diff_out);
  }
  const auto stored =
      arrays_[pc_local]->words().subspan(start_beat * 4, beats * 4);
  return overlay.verify_stored(start_beat, beats, stored, pattern, diff_out);
}

Status HbmStack::read_range_words(unsigned pc_local, std::uint64_t start_beat,
                                  std::uint64_t beats, std::uint64_t* out) {
  HBMVOLT_RETURN_IF_ERROR(check_range(pc_local, start_beat, beats));
  arrays_[pc_local]->read_words(start_beat * 4, beats * 4, out);
  injector_.overlay(global_pc(pc_local))
      .apply_range(start_beat, beats, std::span<std::uint64_t>(out, beats * 4));
  return Status::ok();
}

Status HbmStack::write_range_words(unsigned pc_local, std::uint64_t start_beat,
                                   std::uint64_t beats,
                                   const std::uint64_t* data) {
  HBMVOLT_RETURN_IF_ERROR(check_range(pc_local, start_beat, beats));
  arrays_[pc_local]->write_words(start_beat * 4, beats * 4, data);
  return Status::ok();
}

Result<std::uint64_t> HbmStack::read_word(unsigned pc_local,
                                          std::uint64_t word_index) {
  const Status access = check_access(pc_local, word_index / 4);
  if (!access.is_ok()) return access;
  std::uint64_t word = arrays_[pc_local]->read_word(word_index);
  injector_.overlay(global_pc(pc_local)).apply_word(word_index, word);
  return word;
}

MemoryArray& HbmStack::array(unsigned pc_local) {
  HBMVOLT_REQUIRE(pc_local < arrays_.size(), "PC index out of range");
  return *arrays_[pc_local];
}

}  // namespace hbmvolt::hbm
