// Closed-form word-level data patterns for the batched beat-range engine.
//
// A WordPattern maps a *global 64-bit-word index* within one pseudo-channel
// (word index = beat * 4 + word-within-beat) to the word a pattern test
// writes there, so bulk fills and verifies can run word-by-word without
// materializing per-beat data.  All four traffic-generator pattern kinds
// (axi::PatternKind) reduce to one of three shapes:
//   * kRepeat  -- a repeating block of 4 or 8 words (solid, checkerboard)
//   * kAddress -- word value == word index (address-as-data)
//   * kHash    -- word value == splitmix64(seed ^ index) (pseudo-random)

#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"

namespace hbmvolt::hbm {

/// One 256-bit AXI beat as four little-endian 64-bit words.
using Beat = std::array<std::uint64_t, 4>;

/// Common test patterns for Algorithm 1.
[[nodiscard]] constexpr Beat beat_of_all(std::uint64_t word) noexcept {
  return Beat{word, word, word, word};
}
inline constexpr Beat kBeatAllOnes = {~0ull, ~0ull, ~0ull, ~0ull};
inline constexpr Beat kBeatAllZeros = {0, 0, 0, 0};

class WordPattern {
 public:
  /// Every beat = `beat` (the solid patterns of Algorithm 1).
  [[nodiscard]] static constexpr WordPattern repeat(const Beat& beat) noexcept {
    WordPattern p;
    p.period_ = 4;
    for (unsigned w = 0; w < 4; ++w) p.block_[w] = p.block_[w + 4] = beat[w];
    return p;
  }

  /// Even beats = `even`, odd beats = `odd` (checkerboard).
  [[nodiscard]] static constexpr WordPattern alternate(
      const Beat& even, const Beat& odd) noexcept {
    WordPattern p;
    p.period_ = 8;
    for (unsigned w = 0; w < 4; ++w) {
      p.block_[w] = even[w];
      p.block_[w + 4] = odd[w];
    }
    return p;
  }

  /// Word value == word index (catches addressing faults).
  [[nodiscard]] static constexpr WordPattern address() noexcept {
    WordPattern p;
    p.kind_ = Kind::kAddress;
    return p;
  }

  /// Reproducible per-word pseudo-random data.
  [[nodiscard]] static constexpr WordPattern hashed(
      std::uint64_t seed) noexcept {
    WordPattern p;
    p.kind_ = Kind::kHash;
    p.seed_ = seed;
    return p;
  }

  /// The word this pattern writes at word index `index` (= beat * 4 + w).
  [[nodiscard]] constexpr std::uint64_t word(std::uint64_t index) const noexcept {
    switch (kind_) {
      case Kind::kRepeat:
        return block_[index & (period_ - 1)];
      case Kind::kAddress:
        return index;
      case Kind::kHash:
        return splitmix64(seed_ ^ index);
    }
    return 0;
  }

  /// The bit this pattern writes at bit index `bit_index` within the PC.
  [[nodiscard]] constexpr bool bit(std::uint64_t bit_index) const noexcept {
    return (word(bit_index / 64) >> (bit_index % 64)) & 1ull;
  }

  friend constexpr bool operator==(const WordPattern&,
                                   const WordPattern&) noexcept = default;

 private:
  enum class Kind : std::uint8_t { kRepeat, kAddress, kHash };

  constexpr WordPattern() = default;

  Kind kind_ = Kind::kRepeat;
  std::uint64_t period_ = 4;  // power of two; kRepeat only
  std::array<std::uint64_t, 8> block_{};
  std::uint64_t seed_ = 0;
};

}  // namespace hbmvolt::hbm
