// One HBM stack: 16 pseudo-channel arrays behind an operating-state
// machine driven by the supply voltage.
//
// State behavior (paper §III-B):
//  * Operational while VCC_HBM >= V_critical (0.81 V).
//  * Crashed when the voltage drops below V_critical but stays above 0:
//    the stack stops responding to all traffic, and *restoring the supply
//    voltage does not recover it* -- only a power-down/restart does.
//  * PoweredOff at 0 V; raising the voltage from 0 performs the restart
//    (contents are lost: the arrays re-scramble).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/geometry.hpp"
#include "hbm/memory_array.hpp"

namespace hbmvolt::hbm {

class HbmStack {
 public:
  enum class State { kOperational, kCrashed, kPoweredOff };

  /// `injector` spans all PCs of the device and is shared between stacks;
  /// it must outlive the stack.
  HbmStack(const HbmGeometry& geometry, unsigned stack_index,
           faults::FaultInjector& injector, std::uint64_t seed);

  [[nodiscard]] unsigned index() const noexcept { return index_; }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] Millivolts voltage() const noexcept { return voltage_; }
  [[nodiscard]] const HbmGeometry& geometry() const noexcept {
    return geometry_;
  }

  /// Supply-voltage notification (wired to the regulator's output).  Note
  /// this only moves *this stack's* state machine; the caller is
  /// responsible for FaultInjector::set_voltage (the injector is shared).
  void on_voltage_change(Millivolts v);

  /// True when the stack responds to traffic.
  [[nodiscard]] bool responding() const noexcept {
    return state_ == State::kOperational;
  }

  /// Chaos-injection seam: drops an operational stack into the crashed
  /// state as if a marginal cell upset the control logic at a voltage the
  /// deterministic model calls safe.  Recovery semantics are identical to
  /// a real crash (only a power cycle restarts it).  No-op unless
  /// operational.  See src/chaos/.
  void force_crash() noexcept {
    if (state_ == State::kOperational) state_ = State::kCrashed;
  }

  /// Chaos-injection seam for whole-pseudo-channel death: the paper's
  /// per-PC variation data makes the weakest PC of a stack the first
  /// casualty of undervolting, and when its access circuitry lets go the
  /// PC is gone for good.  All traffic to a killed PC returns UNAVAILABLE
  /// while its siblings keep serving, and -- unlike a crash -- a power
  /// cycle does NOT bring it back: surviving this is the cross-PC
  /// erasure stripe's job, not the ladder's.
  void kill_pc(unsigned pc_local) noexcept {
    if (pc_local < killed_.size()) killed_[pc_local] = 1;
  }

  [[nodiscard]] bool pc_killed(unsigned pc_local) const noexcept {
    return pc_local < killed_.size() && killed_[pc_local] != 0;
  }

  /// Writes one 256-bit beat.  UNAVAILABLE when crashed or powered off.
  Status write_beat(unsigned pc_local, std::uint64_t beat, const Beat& data);

  /// Reads one 256-bit beat with the stuck-at overlay of the current
  /// voltage applied.  UNAVAILABLE when crashed or powered off.
  Result<Beat> read_beat(unsigned pc_local, std::uint64_t beat);

  // ---- Batched beat-range engine ----
  // Word-granularity bulk operations with the state/bounds check hoisted
  // out of the loop; byte-identical results to the per-beat path (see
  // docs/performance.md).

  /// OK iff traffic to [start_beat, start_beat + beats) would be accepted
  /// (operating state plus range bounds).
  Status check_range(unsigned pc_local, std::uint64_t start_beat,
                     std::uint64_t beats) const;

  /// Bulk-writes `pattern` over the beat range.
  Status write_range(unsigned pc_local, std::uint64_t start_beat,
                     std::uint64_t beats, const WordPattern& pattern);

  /// Bulk read-verify of the beat range against `pattern` with the current
  /// voltage's overlay applied word-wise.  With `after_matching_write` the
  /// stored data is known to equal the pattern (the range was just written
  /// with it), so only stuck cells can differ and the verify touches no
  /// memory-array words: O(stuck cells) sparse, a single pattern-vs-pattern
  /// O(1) comparison when the overlay is empty (the whole guardband).
  /// `diff_out`, when non-null, receives OR-ed per-word diffs (diff_out[0]
  /// = first word of `start_beat`).
  Result<RangeFlips> read_verify_range(unsigned pc_local,
                                       std::uint64_t start_beat,
                                       std::uint64_t beats,
                                       const WordPattern& pattern,
                                       bool after_matching_write,
                                       std::uint64_t* diff_out = nullptr);

  /// Raw bulk read of a beat range into `out` (beats * 4 words) with the
  /// current voltage's overlay applied -- the word-span sibling of
  /// read_beat for engines that carry their own buffers (ECC decode_range).
  Status read_range_words(unsigned pc_local, std::uint64_t start_beat,
                          std::uint64_t beats, std::uint64_t* out);

  /// Raw bulk write of a beat range from `data` (beats * 4 words).
  Status write_range_words(unsigned pc_local, std::uint64_t start_beat,
                           std::uint64_t beats, const std::uint64_t* data);

  /// Reads one 64-bit word (index counted from the start of the PC) with
  /// the overlay applied: a quarter of a read_beat for readers that only
  /// need one word (e.g. a beat's ECC check bytes).
  Result<std::uint64_t> read_word(unsigned pc_local, std::uint64_t word_index);

  /// Direct array access for tests and white-box analyses.
  [[nodiscard]] MemoryArray& array(unsigned pc_local);

  /// Global PC index of a local one.
  [[nodiscard]] unsigned global_pc(unsigned pc_local) const noexcept {
    return index_ * geometry_.pcs_per_stack() + pc_local;
  }

 private:
  Status check_access(unsigned pc_local, std::uint64_t beat) const;

  HbmGeometry geometry_;
  unsigned index_;
  faults::FaultInjector& injector_;
  std::uint64_t seed_;
  State state_ = State::kOperational;
  Millivolts voltage_{1200};
  std::vector<std::unique_ptr<MemoryArray>> arrays_;
  // Per-PC death flags; power cycles don't clear them.  One byte per PC
  // (not vector<bool>): a fleet worker killing its own PC must not share
  // a memory location with siblings reading theirs.
  std::vector<std::uint8_t> killed_;
};

}  // namespace hbmvolt::hbm
