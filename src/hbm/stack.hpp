// One HBM stack: 16 pseudo-channel arrays behind an operating-state
// machine driven by the supply voltage.
//
// State behavior (paper §III-B):
//  * Operational while VCC_HBM >= V_critical (0.81 V).
//  * Crashed when the voltage drops below V_critical but stays above 0:
//    the stack stops responding to all traffic, and *restoring the supply
//    voltage does not recover it* -- only a power-down/restart does.
//  * PoweredOff at 0 V; raising the voltage from 0 performs the restart
//    (contents are lost: the arrays re-scramble).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/geometry.hpp"
#include "hbm/memory_array.hpp"

namespace hbmvolt::hbm {

class HbmStack {
 public:
  enum class State { kOperational, kCrashed, kPoweredOff };

  /// `injector` spans all PCs of the device and is shared between stacks;
  /// it must outlive the stack.
  HbmStack(const HbmGeometry& geometry, unsigned stack_index,
           faults::FaultInjector& injector, std::uint64_t seed);

  [[nodiscard]] unsigned index() const noexcept { return index_; }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] Millivolts voltage() const noexcept { return voltage_; }
  [[nodiscard]] const HbmGeometry& geometry() const noexcept {
    return geometry_;
  }

  /// Supply-voltage notification (wired to the regulator's output).  Note
  /// this only moves *this stack's* state machine; the caller is
  /// responsible for FaultInjector::set_voltage (the injector is shared).
  void on_voltage_change(Millivolts v);

  /// True when the stack responds to traffic.
  [[nodiscard]] bool responding() const noexcept {
    return state_ == State::kOperational;
  }

  /// Writes one 256-bit beat.  UNAVAILABLE when crashed or powered off.
  Status write_beat(unsigned pc_local, std::uint64_t beat, const Beat& data);

  /// Reads one 256-bit beat with the stuck-at overlay of the current
  /// voltage applied.  UNAVAILABLE when crashed or powered off.
  Result<Beat> read_beat(unsigned pc_local, std::uint64_t beat);

  /// Direct array access for tests and white-box analyses.
  [[nodiscard]] MemoryArray& array(unsigned pc_local);

  /// Global PC index of a local one.
  [[nodiscard]] unsigned global_pc(unsigned pc_local) const noexcept {
    return index_ * geometry_.pcs_per_stack() + pc_local;
  }

 private:
  Status check_access(unsigned pc_local, std::uint64_t beat) const;

  HbmGeometry geometry_;
  unsigned index_;
  faults::FaultInjector& injector_;
  std::uint64_t seed_;
  State state_ = State::kOperational;
  Millivolts voltage_{1200};
  std::vector<std::unique_ptr<MemoryArray>> arrays_;
};

}  // namespace hbmvolt::hbm
