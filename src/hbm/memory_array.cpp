#include "hbm/memory_array.hpp"

#include "common/rng.hpp"

namespace hbmvolt::hbm {

MemoryArray::MemoryArray(std::uint64_t bits, std::uint64_t seed)
    : bits_(bits), words_(bits / 64) {
  HBMVOLT_REQUIRE(bits > 0 && bits % 256 == 0,
                  "array size must be a positive multiple of 256 bits");
  scramble(seed);
}

void MemoryArray::write_beat(std::uint64_t beat, const Beat& data) noexcept {
  const std::uint64_t w = beat * 4;
  words_[w] = data[0];
  words_[w + 1] = data[1];
  words_[w + 2] = data[2];
  words_[w + 3] = data[3];
}

Beat MemoryArray::read_beat(std::uint64_t beat) const noexcept {
  const std::uint64_t w = beat * 4;
  return Beat{words_[w], words_[w + 1], words_[w + 2], words_[w + 3]};
}

void MemoryArray::write_bit(std::uint64_t bit, bool value) noexcept {
  const std::uint64_t mask = 1ull << (bit % 64);
  if (value) {
    words_[bit / 64] |= mask;
  } else {
    words_[bit / 64] &= ~mask;
  }
}

bool MemoryArray::read_bit(std::uint64_t bit) const noexcept {
  return (words_[bit / 64] >> (bit % 64)) & 1ull;
}

void MemoryArray::scramble(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& word : words_) word = rng();
}

void MemoryArray::fill(const Beat& pattern) noexcept {
  for (std::uint64_t w = 0; w < words_.size(); w += 4) {
    words_[w] = pattern[0];
    words_[w + 1] = pattern[1];
    words_[w + 2] = pattern[2];
    words_[w + 3] = pattern[3];
  }
}

}  // namespace hbmvolt::hbm
