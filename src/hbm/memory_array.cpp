#include "hbm/memory_array.hpp"

#include <bit>
#include <cstring>

#include "common/rng.hpp"

namespace hbmvolt::hbm {

MemoryArray::MemoryArray(std::uint64_t bits, std::uint64_t seed)
    : bits_(bits), scramble_seed_(seed) {
  HBMVOLT_REQUIRE(bits > 0 && bits % 256 == 0,
                  "array size must be a positive multiple of 256 bits");
}

void MemoryArray::ensure_materialized() const {
  if (!words_.empty()) return;
  words_.resize(bits_ / 64);
  Xoshiro256 rng(scramble_seed_);
  for (auto& word : words_) word = rng();
}

void MemoryArray::write_beat(std::uint64_t beat, const Beat& data) noexcept {
  ensure_materialized();
  const std::uint64_t w = beat * 4;
  words_[w] = data[0];
  words_[w + 1] = data[1];
  words_[w + 2] = data[2];
  words_[w + 3] = data[3];
}

Beat MemoryArray::read_beat(std::uint64_t beat) const noexcept {
  ensure_materialized();
  const std::uint64_t w = beat * 4;
  return Beat{words_[w], words_[w + 1], words_[w + 2], words_[w + 3]};
}

void MemoryArray::write_bit(std::uint64_t bit, bool value) noexcept {
  ensure_materialized();
  const std::uint64_t mask = 1ull << (bit % 64);
  if (value) {
    words_[bit / 64] |= mask;
  } else {
    words_[bit / 64] &= ~mask;
  }
}

bool MemoryArray::read_bit(std::uint64_t bit) const noexcept {
  ensure_materialized();
  return (words_[bit / 64] >> (bit % 64)) & 1ull;
}

void MemoryArray::read_words(std::uint64_t first_word, std::uint64_t count,
                             std::uint64_t* out) const noexcept {
  ensure_materialized();
  std::memcpy(out, words_.data() + first_word, count * sizeof(std::uint64_t));
}

void MemoryArray::write_words(std::uint64_t first_word, std::uint64_t count,
                              const std::uint64_t* data) noexcept {
  ensure_materialized();
  std::memcpy(words_.data() + first_word, data,
              count * sizeof(std::uint64_t));
}

std::uint64_t MemoryArray::read_word(std::uint64_t word) const noexcept {
  ensure_materialized();
  return words_[word];
}

void MemoryArray::scramble(std::uint64_t seed) {
  scramble_seed_ = seed;
  words_.clear();
  words_.shrink_to_fit();  // a powered-off stack holds no data
}

void MemoryArray::fill(const Beat& pattern) noexcept {
  fill_range(0, beats(), WordPattern::repeat(pattern));
}

void MemoryArray::fill_range(std::uint64_t start_beat, std::uint64_t beats,
                             const WordPattern& pattern) noexcept {
  if (words_.empty() && start_beat == 0 && beats == bits_ / 256) {
    words_.resize(bits_ / 64);  // whole-array fill: skip the scramble
  } else {
    ensure_materialized();
  }
  const std::uint64_t w0 = start_beat * 4;
  const std::uint64_t count = beats * 4;
  std::uint64_t* dst = words_.data() + w0;
  for (std::uint64_t i = 0; i < count; ++i) dst[i] = pattern.word(w0 + i);
}

RangeFlips MemoryArray::compare_range(std::uint64_t start_beat,
                                      std::uint64_t beats,
                                      const WordPattern& pattern,
                                      std::uint64_t* diff_out) const noexcept {
  ensure_materialized();
  RangeFlips out;
  const std::uint64_t w0 = start_beat * 4;
  const std::uint64_t* src = words_.data() + w0;
  for (std::uint64_t b = 0; b < beats; ++b) {
    std::uint64_t any = 0;
    for (unsigned w = 0; w < 4; ++w) {
      const std::uint64_t i = b * 4 + w;
      const std::uint64_t expected = pattern.word(w0 + i);
      const std::uint64_t diff = src[i] ^ expected;
      out.flips_1to0 +=
          static_cast<unsigned>(std::popcount(diff & expected));
      out.flips_0to1 +=
          static_cast<unsigned>(std::popcount(diff & ~expected));
      any |= diff;
      if (diff_out != nullptr) diff_out[i] |= diff;
    }
    if (any != 0) ++out.mismatched_beats;
  }
  return out;
}

}  // namespace hbmvolt::hbm
