#include "hbm/geometry.hpp"

namespace hbmvolt::hbm {

Status HbmGeometry::validate() const {
  if (stacks == 0 || channels_per_stack == 0 || pcs_per_channel == 0) {
    return invalid_argument("geometry dimensions must be positive");
  }
  if (bits_per_beat == 0 || bits_per_beat % 64 != 0) {
    return invalid_argument("beat width must be a positive multiple of 64");
  }
  if (bits_per_pc == 0 || bits_per_pc % bits_per_beat != 0) {
    return invalid_argument("PC capacity must be a multiple of the beat width");
  }
  if (banks_per_pc == 0 || beats_per_row == 0) {
    return invalid_argument("bank/row organization must be positive");
  }
  const std::uint64_t beats_per_bank_row =
      static_cast<std::uint64_t>(banks_per_pc) * beats_per_row;
  if (beats_per_pc() % beats_per_bank_row != 0) {
    return invalid_argument("beats per PC must tile whole rows across banks");
  }
  return Status::ok();
}

HbmGeometry HbmGeometry::vcu128() {
  HbmGeometry g;
  g.stacks = 2;
  g.channels_per_stack = 8;
  g.pcs_per_channel = 2;
  g.bits_per_pc = 1ull << 31;  // 256 MB per PC
  g.bits_per_beat = 256;
  g.banks_per_pc = 16;
  g.beats_per_row = 64;        // 2 KB rows / 32 B columns
  return g;
}

HbmGeometry HbmGeometry::simulation_default() {
  HbmGeometry g;
  g.bits_per_pc = 1ull << 19;  // 64 KiB per PC: full sweeps in seconds
  g.banks_per_pc = 4;
  g.beats_per_row = 16;
  return g;
}

HbmGeometry HbmGeometry::test_tiny() {
  HbmGeometry g;
  g.bits_per_pc = 1ull << 14;  // 2 KiB per PC
  g.banks_per_pc = 2;
  g.beats_per_row = 8;
  return g;
}

BeatLocation decompose_beat(const HbmGeometry& g, std::uint64_t beat) noexcept {
  BeatLocation loc;
  loc.column = static_cast<unsigned>(beat % g.beats_per_row);
  const std::uint64_t upper = beat / g.beats_per_row;
  loc.bank = static_cast<unsigned>(upper % g.banks_per_pc);
  loc.row = upper / g.banks_per_pc;
  return loc;
}

std::uint64_t compose_beat(const HbmGeometry& g,
                           const BeatLocation& loc) noexcept {
  return (loc.row * g.banks_per_pc + loc.bank) * g.beats_per_row + loc.column;
}

}  // namespace hbmvolt::hbm
