// Backing store for one pseudo-channel's DRAM array.
//
// Stores the *written* value of every bit; voltage-induced stuck-at faults
// are applied as an overlay at read time (see faults/fault_overlay.hpp),
// which matches the physics: a stuck cell still receives writes, it just
// cannot hold the value, and recovers its last written data once the
// voltage is raised back above its failure point is not modelled -- the
// paper's tests always rewrite before reading.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace hbmvolt::hbm {

/// One 256-bit AXI beat as four little-endian 64-bit words.
using Beat = std::array<std::uint64_t, 4>;

class MemoryArray {
 public:
  /// Creates an array of `bits` cells (must be a multiple of 256),
  /// initialized to the power-up pattern derived from `seed` (real DRAM
  /// powers up with effectively random contents).
  MemoryArray(std::uint64_t bits, std::uint64_t seed);

  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::uint64_t beats() const noexcept { return bits_ / 256; }

  void write_beat(std::uint64_t beat, const Beat& data) noexcept;
  [[nodiscard]] Beat read_beat(std::uint64_t beat) const noexcept;

  /// Bit-granular accessors for tests and fault-map verification.
  void write_bit(std::uint64_t bit, bool value) noexcept;
  [[nodiscard]] bool read_bit(std::uint64_t bit) const noexcept;

  /// Re-randomizes contents (models a power cycle losing all data).
  void scramble(std::uint64_t seed);

  /// Fills the entire array with a repeating beat pattern.
  void fill(const Beat& pattern) noexcept;

  /// Raw word view (read-only) for whole-array scans.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

 private:
  std::uint64_t bits_;
  std::vector<std::uint64_t> words_;
};

/// Common test patterns for Algorithm 1.
[[nodiscard]] constexpr Beat beat_of_all(std::uint64_t word) noexcept {
  return Beat{word, word, word, word};
}
inline constexpr Beat kBeatAllOnes = {~0ull, ~0ull, ~0ull, ~0ull};
inline constexpr Beat kBeatAllZeros = {0, 0, 0, 0};

}  // namespace hbmvolt::hbm
