// Backing store for one pseudo-channel's DRAM array.
//
// Stores the *written* value of every bit; voltage-induced stuck-at faults
// are applied as an overlay at read time (see faults/fault_overlay.hpp),
// which matches the physics: a stuck cell still receives writes, it just
// cannot hold the value, and recovers its last written data once the
// voltage is raised back above its failure point is not modelled -- the
// paper's tests always rewrite before reading.
//
// The backing store is lazily materialized: construction and scramble()
// only record the power-up seed, and the dense word vector is allocated
// and filled on first touch.  Guardband-only sweeps and small tests that
// never access a PC therefore pay nothing for it.  Lazy first touch
// mutates the array through const accessors, so concurrent access to one
// array must be externally serialized -- the parallel sweep engine already
// partitions work per PC (one worker per array at a time).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "hbm/word_pattern.hpp"

namespace hbmvolt::hbm {

/// Flip counts from one bulk verify, split by direction, plus the number
/// of beats that had at least one differing bit.
struct RangeFlips {
  std::uint64_t flips_1to0 = 0;  // expected 1, observed 0
  std::uint64_t flips_0to1 = 0;  // expected 0, observed 1
  std::uint64_t mismatched_beats = 0;
};

class MemoryArray {
 public:
  /// Creates an array of `bits` cells (must be a multiple of 256), whose
  /// contents on first touch are the power-up pattern derived from `seed`
  /// (real DRAM powers up with effectively random contents).
  MemoryArray(std::uint64_t bits, std::uint64_t seed);

  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::uint64_t beats() const noexcept { return bits_ / 256; }

  /// Whether the dense backing store has been allocated yet.
  [[nodiscard]] bool materialized() const noexcept { return !words_.empty(); }

  void write_beat(std::uint64_t beat, const Beat& data) noexcept;
  [[nodiscard]] Beat read_beat(std::uint64_t beat) const noexcept;

  /// Bit-granular accessors for tests and fault-map verification.
  void write_bit(std::uint64_t bit, bool value) noexcept;
  [[nodiscard]] bool read_bit(std::uint64_t bit) const noexcept;

  /// Re-randomizes contents (models a power cycle losing all data).  Lazy:
  /// releases the backing store and re-materializes on the next touch.
  void scramble(std::uint64_t seed);

  /// Fills the entire array with a repeating beat pattern.
  void fill(const Beat& pattern) noexcept;

  /// Bulk-fills a beat range with `pattern`, word by word.  A whole-array
  /// fill of an unmaterialized store skips the power-up scramble entirely
  /// (every word is overwritten anyway).
  void fill_range(std::uint64_t start_beat, std::uint64_t beats,
                  const WordPattern& pattern) noexcept;

  /// Compares a beat range against `pattern` with popcount-based flip
  /// counting; no Beat is materialized.  When `diff_out` is non-null it
  /// receives OR-ed per-word diffs (diff_out[0] = first word of
  /// `start_beat`).  Fault overlays are NOT applied here -- this is the
  /// raw stored-vs-pattern comparison (see HbmStack::read_verify_range
  /// for the overlay-aware verify).
  [[nodiscard]] RangeFlips compare_range(
      std::uint64_t start_beat, std::uint64_t beats,
      const WordPattern& pattern,
      std::uint64_t* diff_out = nullptr) const noexcept;

  /// Bulk word copies for the beat-range engines: `first_word` indexes
  /// 64-bit words from the start of the array (beat * 4).
  void read_words(std::uint64_t first_word, std::uint64_t count,
                  std::uint64_t* out) const noexcept;
  void write_words(std::uint64_t first_word, std::uint64_t count,
                   const std::uint64_t* data) noexcept;
  [[nodiscard]] std::uint64_t read_word(std::uint64_t word) const noexcept;

  /// Raw word view (read-only) for whole-array scans.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    ensure_materialized();
    return words_;
  }

 private:
  /// Allocates and scrambles the backing store if not yet done.
  void ensure_materialized() const;

  std::uint64_t bits_;
  std::uint64_t scramble_seed_;
  mutable std::vector<std::uint64_t> words_;  // empty until first touch
};

}  // namespace hbmvolt::hbm
