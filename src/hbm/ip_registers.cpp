#include "hbm/ip_registers.hpp"

#include <cmath>

namespace hbmvolt::hbm {

HbmIpCore::HbmIpCore(axi::StackController& controller, Celsius temperature)
    : controller_(controller), temperature_(temperature) {}

Result<std::uint32_t> HbmIpCore::read(std::uint32_t offset) {
  switch (offset) {
    case kRegId:
      return kIdValue;
    case kRegCtrl: {
      std::uint32_t value = 0;
      if (controller_.switch_network().enabled()) value |= kCtrlSwitchEnable;
      return value;
    }
    case kRegStatus: {
      std::uint32_t value = kStatusInitDone;  // model: always calibrated
      if (temperature_.value >= kCattripCelsius) value |= kStatusCattrip;
      if (controller_.stack().responding()) value |= kStatusResponding;
      return value;
    }
    case kRegPortEnable: {
      std::uint32_t mask = 0;
      for (unsigned port = 0; port < controller_.port_count(); ++port) {
        if (controller_.port(port).enabled()) mask |= 1u << port;
      }
      return mask;
    }
    case kRegTemperature:
      return static_cast<std::uint32_t>(
          std::lround(std::max(0.0, temperature_.value)));
    case kRegSlverrCount:
      return static_cast<std::uint32_t>(
          controller_.aggregate_stats().slverr);
    case kRegBeatCountLo: {
      const auto stats = controller_.aggregate_stats();
      return static_cast<std::uint32_t>(
          (stats.beats_written + stats.beats_read) & 0xFFFFFFFFull);
    }
    case kRegBeatCountHi: {
      const auto stats = controller_.aggregate_stats();
      return static_cast<std::uint32_t>(
          (stats.beats_written + stats.beats_read) >> 32);
    }
    default:
      return not_found("HBM IP: no readable register at offset");
  }
}

Status HbmIpCore::write(std::uint32_t offset, std::uint32_t value) {
  switch (offset) {
    case kRegCtrl:
      controller_.switch_network().set_enabled(value & kCtrlSwitchEnable);
      if (value & kCtrlSoftReset) {
        controller_.reset_ports();
        controller_.switch_network().reset_routes();
      }
      return Status::ok();
    case kRegPortEnable:
      controller_.set_enabled_mask(value);
      return Status::ok();
    case kRegId:
    case kRegStatus:
    case kRegTemperature:
    case kRegSlverrCount:
    case kRegBeatCountLo:
    case kRegBeatCountHi:
      return failed_precondition("HBM IP: register is read-only");
    default:
      return not_found("HBM IP: no writable register at offset");
  }
}

}  // namespace hbmvolt::hbm
