// Behavioral model of the Texas Instruments INA226 current/power monitor
// that the VCU128 board places on the VCC_HBM rail, plus the host-side
// driver that performs the datasheet calibration math.
//
// Register map and scaling per the INA226 datasheet (SBOS547):
//   0x00 CONFIG       (reset, averaging, conversion times, mode)
//   0x01 SHUNT        signed, LSB = 2.5 uV
//   0x02 BUS          unsigned, LSB = 1.25 mV
//   0x03 POWER        unsigned, LSB = 25 * Current_LSB
//   0x04 CURRENT      signed,  value = SHUNT * CAL / 2048
//   0x05 CALIBRATION  CAL = 0.00512 / (Current_LSB * R_shunt)
//   0xFE MANUFACTURER ID = 0x5449 ("TI")
//   0xFF DIE ID        = 0x2260
//
// The model samples a RailProbe (true bus voltage + current), quantizes
// through the shunt ADC LSB, and applies optional Gaussian measurement
// noise attenuated by the configured averaging count -- so experiments see
// realistic quantization and can study averaging trade-offs.

#pragma once

#include <cstdint>
#include <functional>

#include "common/retry.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "pmbus/device.hpp"

namespace hbmvolt::pmbus {
class Bus;
}

namespace hbmvolt::sensors {

struct RailSample {
  Millivolts bus_voltage;
  Amps current;
};

class Ina226 : public pmbus::SlaveDevice {
 public:
  struct Config {
    std::uint8_t address = 0x40;
    Ohms shunt{0.002};               // board-level shunt resistor
    double noise_sigma_amps = 0.01;  // 1-sample current noise (std dev)
    std::uint64_t seed = 0x1A226;
  };

  explicit Ina226(Config config);

  /// Provides the true rail state each time a conversion is sampled.
  using RailProbe = std::function<RailSample()>;
  void set_rail_probe(RailProbe probe) { probe_ = std::move(probe); }

  /// Averaging count decoded from CONFIG (1..1024).
  [[nodiscard]] unsigned averaging_count() const noexcept;

  /// Pure register-path power computation for a frozen rail sample: the
  /// exact quantization math of a POWER register read, but with
  /// caller-supplied unit-normal noise and no latched-register or
  /// generator mutation.  Safe to call concurrently from sweep workers.
  [[nodiscard]] std::uint16_t power_register_for(const RailSample& sample,
                                                 double noise_normal) const;

  void reset();

  // SlaveDevice interface (the INA226 is an I2C device; it shares the
  // SMBus word framing the Bus models).
  [[nodiscard]] std::uint8_t address() const noexcept override {
    return config_.address;
  }
  Result<std::uint16_t> read_word(std::uint8_t reg) override;
  Status write_word(std::uint8_t reg, std::uint16_t value) override;

  // Register indices.
  static constexpr std::uint8_t kRegConfig = 0x00;
  static constexpr std::uint8_t kRegShunt = 0x01;
  static constexpr std::uint8_t kRegBus = 0x02;
  static constexpr std::uint8_t kRegPower = 0x03;
  static constexpr std::uint8_t kRegCurrent = 0x04;
  static constexpr std::uint8_t kRegCalibration = 0x05;
  static constexpr std::uint8_t kRegMaskEnable = 0x06;
  static constexpr std::uint8_t kRegAlertLimit = 0x07;
  static constexpr std::uint8_t kRegManufacturerId = 0xFE;
  static constexpr std::uint8_t kRegDieId = 0xFF;

  static constexpr double kShuntLsbVolts = 2.5e-6;
  static constexpr double kBusLsbVolts = 1.25e-3;
  static constexpr std::uint16_t kConfigDefault = 0x4127;

 private:
  /// Runs one (averaged) conversion and latches the data registers.
  void convert();
  /// Shared quantization math: rail sample + unit-normal noise -> shunt
  /// and bus register values.  Const and stateless.
  void quantize(const RailSample& sample, double noise_normal,
                std::int16_t* shunt_reg, std::uint16_t* bus_reg) const;

  Config config_;
  RailProbe probe_;
  Xoshiro256 rng_;

  std::uint16_t config_reg_ = kConfigDefault;
  std::uint16_t calibration_ = 0;
  std::uint16_t mask_enable_ = 0;
  std::uint16_t alert_limit_ = 0;
  std::int16_t shunt_reg_ = 0;
  std::uint16_t bus_reg_ = 0;
};

/// Host-side driver implementing the datasheet calibration procedure.
/// All transactions run under a bounded RetryPolicy; configuration writes
/// read the register back and retry until it matches (CALIBRATION and
/// CONFIG echo exactly, so a mismatch means the write was lost).
class Ina226Driver {
 public:
  Ina226Driver(pmbus::Bus& bus, std::uint8_t address);

  /// Retry knobs for all driver transactions (default: 4 attempts).
  void set_retry_policy(RetryPolicy policy) noexcept { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept {
    return retry_;
  }

  /// Programs CALIBRATION for the given full-scale current and shunt value
  /// and sets the averaging count (rounded up to a supported 1..1024 step).
  Status configure(double max_expected_amps, Ohms shunt, unsigned averages);

  Result<Millivolts> read_bus_voltage();
  Result<Amps> read_current();
  Result<Watts> read_power();
  Result<Amps> read_shunt_current();  // from SHUNT register directly

  [[nodiscard]] double current_lsb() const noexcept { return current_lsb_; }

 private:
  /// One write-then-verify retry unit for an exactly-echoing register.
  Status write_verified(std::uint8_t reg, std::uint16_t value,
                        const char* op);

  pmbus::Bus& bus_;
  std::uint8_t address_;
  RetryPolicy retry_;
  double current_lsb_ = 0.0;
  Ohms shunt_{0.002};
};

}  // namespace hbmvolt::sensors
