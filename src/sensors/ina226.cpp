#include "sensors/ina226.hpp"

#include <algorithm>
#include <cmath>

#include "pmbus/bus.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::sensors {

Ina226::Ina226(Config config) : config_(config), rng_(config.seed) {}

void Ina226::reset() {
  config_reg_ = kConfigDefault;
  calibration_ = 0;
  mask_enable_ = 0;
  alert_limit_ = 0;
  shunt_reg_ = 0;
  bus_reg_ = 0;
}

unsigned Ina226::averaging_count() const noexcept {
  static constexpr unsigned kCounts[8] = {1, 4, 16, 64, 128, 256, 512, 1024};
  return kCounts[(config_reg_ >> 9) & 0x7];
}

void Ina226::quantize(const RailSample& sample, double noise_normal,
                      std::int16_t* shunt_reg, std::uint16_t* bus_reg) const {
  // Gaussian noise on the current measurement, attenuated by averaging.
  const double navg = averaging_count();
  const double sigma = config_.noise_sigma_amps / std::sqrt(navg);
  const double i_measured = sample.current.value + sigma * noise_normal;
  const double vshunt = i_measured * config_.shunt.value;
  const double shunt_counts = std::nearbyint(vshunt / kShuntLsbVolts);
  *shunt_reg = static_cast<std::int16_t>(
      std::clamp(shunt_counts, -32768.0, 32767.0));
  const double bus_counts =
      std::nearbyint(sample.bus_voltage.volts() / kBusLsbVolts);
  *bus_reg = static_cast<std::uint16_t>(std::clamp(bus_counts, 0.0, 32767.0));
}

void Ina226::convert() {
  if (!probe_) {
    shunt_reg_ = 0;
    bus_reg_ = 0;
    return;
  }
  quantize(probe_(), rng_.normal(), &shunt_reg_, &bus_reg_);
}

std::uint16_t Ina226::power_register_for(const RailSample& sample,
                                         double noise_normal) const {
  std::int16_t shunt_reg = 0;
  std::uint16_t bus_reg = 0;
  quantize(sample, noise_normal, &shunt_reg, &bus_reg);
  // Datasheet eqs. 3 and 4, as in the POWER register read path.
  const std::int32_t current =
      (static_cast<std::int32_t>(shunt_reg) * calibration_) / 2048;
  const std::int32_t power =
      (current * static_cast<std::int32_t>(bus_reg)) / 20000;
  return static_cast<std::uint16_t>(std::clamp<std::int32_t>(power, 0, 65535));
}

Result<std::uint16_t> Ina226::read_word(std::uint8_t reg) {
  switch (reg) {
    case kRegConfig:
      return config_reg_;
    case kRegShunt:
      convert();
      return static_cast<std::uint16_t>(shunt_reg_);
    case kRegBus:
      convert();
      return bus_reg_;
    case kRegCurrent: {
      convert();
      // Datasheet eq. 3: Current = (ShuntVoltage * CAL) / 2048.
      const std::int32_t current =
          (static_cast<std::int32_t>(shunt_reg_) * calibration_) / 2048;
      return static_cast<std::uint16_t>(
          std::clamp<std::int32_t>(current, -32768, 32767));
    }
    case kRegPower: {
      convert();
      const std::int32_t current =
          (static_cast<std::int32_t>(shunt_reg_) * calibration_) / 2048;
      // Datasheet eq. 4: Power = (Current * BusVoltage) / 20000.
      const std::int32_t power =
          (current * static_cast<std::int32_t>(bus_reg_)) / 20000;
      return static_cast<std::uint16_t>(std::clamp<std::int32_t>(power, 0, 65535));
    }
    case kRegCalibration:
      return calibration_;
    case kRegMaskEnable:
      return mask_enable_;
    case kRegAlertLimit:
      return alert_limit_;
    case kRegManufacturerId:
      return std::uint16_t{0x5449};
    case kRegDieId:
      return std::uint16_t{0x2260};
    default:
      return not_found("INA226: no such register");
  }
}

Status Ina226::write_word(std::uint8_t reg, std::uint16_t value) {
  switch (reg) {
    case kRegConfig:
      if (value & 0x8000) {  // RST bit
        reset();
      } else {
        config_reg_ = value;
      }
      return Status::ok();
    case kRegCalibration:
      calibration_ = value & 0x7FFF;
      return Status::ok();
    case kRegMaskEnable:
      mask_enable_ = value;
      return Status::ok();
    case kRegAlertLimit:
      alert_limit_ = value;
      return Status::ok();
    default:
      return not_found("INA226: register is read-only or absent");
  }
}

// --------------------------- Ina226Driver ---------------------------------

Ina226Driver::Ina226Driver(pmbus::Bus& bus, std::uint8_t address)
    : bus_(bus), address_(address) {}

Status Ina226Driver::write_verified(std::uint8_t reg, std::uint16_t value,
                                    const char* op) {
  // CALIBRATION and CONFIG read back exactly what was written, so the
  // write + read-back pair is one retry unit and a mismatch means the
  // write was lost on the wire.
  return retry_status(retry_, op, [&]() -> Status {
    HBMVOLT_RETURN_IF_ERROR(bus_.write_word(address_, reg, value));
    auto echo = bus_.read_word(address_, reg);
    if (!echo.is_ok()) return echo.status();
    if (echo.value() != value) {
      return data_loss("register read-back mismatch after write");
    }
    return Status::ok();
  });
}

Status Ina226Driver::configure(double max_expected_amps, Ohms shunt,
                               unsigned averages) {
  if (max_expected_amps <= 0.0 || shunt.value <= 0.0) {
    return invalid_argument("INA226 calibration needs positive I_max and R");
  }
  shunt_ = shunt;
  // Datasheet eq. 2: Current_LSB = I_max / 2^15; eq. 1: CAL = 0.00512 /
  // (Current_LSB * R_shunt).
  current_lsb_ = max_expected_amps / 32768.0;
  const double cal = 0.00512 / (current_lsb_ * shunt.value);
  if (cal > 32767.0) {
    return invalid_argument("INA226 calibration exceeds register range");
  }
  HBMVOLT_RETURN_IF_ERROR(write_verified(Ina226::kRegCalibration,
                                         static_cast<std::uint16_t>(cal),
                                         "ina226.set_calibration"));

  // Averaging field (CONFIG bits 11..9): pick the smallest supported count
  // >= the request.
  static constexpr unsigned kCounts[8] = {1, 4, 16, 64, 128, 256, 512, 1024};
  std::uint16_t avg_bits = 7;
  for (std::uint16_t i = 0; i < 8; ++i) {
    if (kCounts[i] >= averages) {
      avg_bits = i;
      break;
    }
  }
  const std::uint16_t config =
      static_cast<std::uint16_t>((Ina226::kConfigDefault & ~0x0E00) |
                                 (avg_bits << 9));
  return write_verified(Ina226::kRegConfig, config, "ina226.set_config");
}

// Data-register reads retry too, but note the determinism caveat: each
// attempt triggers a fresh conversion in the device, so a retried read
// advances the sensor's sequential noise stream.  The campaign's power
// figures do not go through this path (they use the snapshot-based
// power_register_for), so retried dropouts stay figure-neutral there.

Result<Millivolts> Ina226Driver::read_bus_voltage() {
  auto reg = retry_result(retry_, "ina226.read_bus_voltage", [&] {
    return bus_.read_word(address_, Ina226::kRegBus);
  });
  if (!reg.is_ok()) return reg.status();
  return from_volts(reg.value() * Ina226::kBusLsbVolts);
}

Result<Amps> Ina226Driver::read_current() {
  auto reg = retry_result(retry_, "ina226.read_current", [&] {
    return bus_.read_word(address_, Ina226::kRegCurrent);
  });
  if (!reg.is_ok()) return reg.status();
  return Amps{static_cast<std::int16_t>(reg.value()) * current_lsb_};
}

Result<Watts> Ina226Driver::read_power() {
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("power.samples");
  }
  auto reg = retry_result(retry_, "ina226.read_power", [&] {
    return bus_.read_word(address_, Ina226::kRegPower);
  });
  if (!reg.is_ok()) return reg.status();
  return Watts{reg.value() * 25.0 * current_lsb_};
}

Result<Amps> Ina226Driver::read_shunt_current() {
  auto reg = retry_result(retry_, "ina226.read_shunt_current", [&] {
    return bus_.read_word(address_, Ina226::kRegShunt);
  });
  if (!reg.is_ok()) return reg.status();
  const double vshunt =
      static_cast<std::int16_t>(reg.value()) * Ina226::kShuntLsbVolts;
  return Amps{vshunt / shunt_.value};
}

}  // namespace hbmvolt::sensors
