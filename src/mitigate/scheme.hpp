// Mitigation scheme registry: the pluggable knob that picks which
// protection stack a ReliableChannel fleet deploys.
//
// The paper frames undervolted HBM as a power/reliability/performance
// trade-off; which point is reachable depends on the deployed mitigation
// (Salami et al.'s built-in-ECC study, PAPERS.md).  The zoo:
//
//   secded  Hamming(72,64) per word, remap/park/journal ladder.  Fault
//           domain: one DRAM cell per word.  1/8 check storage.
//   dected  BCH+parity(80,64) per word, same ladder.  Fault domain: two
//           cells per word.  1/4 check storage.
//   stripe  SECDED per word plus a RAIM-style XOR erasure stripe across
//           pseudo-channels: one parity PC per `stripe_width` data PCs.
//           Fault domain: one whole pseudo-channel -- the fleet serves
//           a dead PC's reads by reconstruction from its stripe peers
//           and rebuilds it onto a spare PC online.
//
// Scheme selection stays a plain enum + descriptor table (no virtual
// codec dispatch on the word hot path): the codec is resolved once at
// channel construction, the stripe topology once at fleet construction.

#pragma once

#include <string_view>

#include "ecc/ecc_channel.hpp"

namespace hbmvolt::mitigate {

enum class MitigationKind : unsigned {
  kSecded = 0,
  kDected = 1,
  kStripe = 2,
};

inline constexpr unsigned kMitigationKindCount = 3;

/// Static descriptor of one scheme; runtime costs (throughput tax, V_min
/// reached) come from the ext_mitigation_frontier bench, not from here.
struct SchemeInfo {
  const char* name;
  ecc::WordCodec codec;       // per-word codec the channels deploy
  const char* fault_domain;   // largest failure unit survived per codeword
  double check_overhead;      // check storage / data storage
  bool striped;               // cross-PC erasure stripe on top
};

[[nodiscard]] const SchemeInfo& scheme_info(MitigationKind kind) noexcept;
[[nodiscard]] const char* to_string(MitigationKind kind) noexcept;

/// Parses a scheme name ("secded" / "dected" / "stripe"); returns false
/// on anything else, leaving *out untouched.
[[nodiscard]] bool parse_mitigation(std::string_view text,
                                    MitigationKind* out) noexcept;

}  // namespace hbmvolt::mitigate
