#include "mitigate/scheme.hpp"

namespace hbmvolt::mitigate {

namespace {

constexpr SchemeInfo kSchemes[kMitigationKindCount] = {
    {"secded", ecc::WordCodec::kSecded, "1 cell/word", 1.0 / 8.0, false},
    {"dected", ecc::WordCodec::kDected, "2 cells/word", 2.0 / 8.0, false},
    {"stripe", ecc::WordCodec::kSecded, "1 pseudo-channel", 1.0 / 8.0, true},
};

}  // namespace

const SchemeInfo& scheme_info(MitigationKind kind) noexcept {
  return kSchemes[static_cast<unsigned>(kind)];
}

const char* to_string(MitigationKind kind) noexcept {
  return scheme_info(kind).name;
}

bool parse_mitigation(std::string_view text, MitigationKind* out) noexcept {
  for (unsigned i = 0; i < kMitigationKindCount; ++i) {
    if (text == kSchemes[i].name) {
      *out = static_cast<MitigationKind>(i);
      return true;
    }
  }
  return false;
}

}  // namespace hbmvolt::mitigate
