#include "mitigate/row_retirement.hpp"

#include "common/status.hpp"

namespace hbmvolt::mitigate {

RetirementMap RetirementMap::build(faults::FaultInjector& injector,
                                   Millivolts v) {
  return build_filtered(injector, v, 1);
}

RetirementMap RetirementMap::build_filtered(faults::FaultInjector& injector,
                                            Millivolts v,
                                            unsigned min_faults_per_row) {
  HBMVOLT_REQUIRE(min_faults_per_row >= 1, "threshold must be positive");
  RetirementMap map(injector.model().geometry());
  map.voltage_ = v;
  map.retired_.resize(map.geometry_.total_pcs());

  const Millivolts restore = injector.voltage();
  injector.set_voltage(v);
  for (unsigned pc = 0; pc < map.geometry_.total_pcs(); ++pc) {
    map.retire_overlay(pc, injector.overlay(pc), min_faults_per_row);
  }
  injector.set_voltage(restore);
  return map;
}

RetirementMap RetirementMap::build_for_pc(faults::FaultInjector& injector,
                                          unsigned pc_global, Millivolts v) {
  RetirementMap map(injector.model().geometry());
  map.voltage_ = v;
  map.retired_.resize(map.geometry_.total_pcs());
  HBMVOLT_REQUIRE(pc_global < map.geometry_.total_pcs(),
                  "PC index out of range");

  const Millivolts restore = injector.voltage();
  injector.set_voltage(v);
  map.retire_overlay(pc_global, injector.overlay(pc_global));
  injector.set_voltage(restore);
  return map;
}

void RetirementMap::retire_overlay(unsigned pc_global,
                                   const faults::FaultOverlay& overlay,
                                   unsigned min_faults_per_row) {
  if (overlay.empty()) return;
  std::vector<std::uint32_t> counts(rows_per_pc(), 0);
  overlay.for_each([&](std::uint64_t bit, faults::StuckPolarity) {
    const auto loc =
        hbm::decompose_beat(geometry_, bit / geometry_.bits_per_beat);
    ++counts[row_index(loc.bank, loc.row)];
  });
  auto& rows = retired_[pc_global];
  for (std::size_t row = 0; row < counts.size(); ++row) {
    if (counts[row] >= min_faults_per_row) {
      if (rows.empty()) rows.assign(rows_per_pc(), false);
      rows[row] = true;
    }
  }
}

bool RetirementMap::row_retired(unsigned pc_global, unsigned bank,
                                std::uint64_t row) const {
  HBMVOLT_REQUIRE(pc_global < retired_.size(), "PC index out of range");
  const auto& rows = retired_[pc_global];
  if (rows.empty()) return false;
  return rows[row_index(bank, row)];
}

bool RetirementMap::beat_retired(unsigned pc_global,
                                 std::uint64_t beat) const {
  const auto loc = hbm::decompose_beat(geometry_, beat);
  return row_retired(pc_global, loc.bank, loc.row);
}

std::uint64_t RetirementMap::rows_retired(unsigned pc_global) const {
  HBMVOLT_REQUIRE(pc_global < retired_.size(), "PC index out of range");
  std::uint64_t count = 0;
  for (const bool retired : retired_[pc_global]) count += retired ? 1 : 0;
  return count;
}

std::uint64_t RetirementMap::rows_retired_total() const {
  std::uint64_t count = 0;
  for (unsigned pc = 0; pc < retired_.size(); ++pc) {
    count += rows_retired(pc);
  }
  return count;
}

double RetirementMap::capacity_fraction() const {
  const auto total = static_cast<double>(rows_per_pc() * retired_.size());
  return 1.0 - static_cast<double>(rows_retired_total()) / total;
}

double RetirementMap::pc_capacity_fraction(unsigned pc_global) const {
  return 1.0 - static_cast<double>(rows_retired(pc_global)) /
                   static_cast<double>(rows_per_pc());
}

}  // namespace hbmvolt::mitigate
