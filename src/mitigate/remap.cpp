#include "mitigate/remap.hpp"

namespace hbmvolt::mitigate {

RemappedChannel::RemappedChannel(hbm::HbmStack& stack, unsigned pc_local,
                                 const RetirementMap& retirement)
    : stack_(stack), pc_local_(pc_local) {
  const unsigned pc_global = stack_.global_pc(pc_local);
  const std::uint64_t beats = stack_.geometry().beats_per_pc();
  HBMVOLT_REQUIRE(beats <= (1ull << 32), "beat index exceeds remap width");
  remap_.reserve(beats);
  for (std::uint64_t beat = 0; beat < beats; ++beat) {
    if (!retirement.beat_retired(pc_global, beat)) {
      remap_.push_back(static_cast<std::uint32_t>(beat));
    }
  }
}

double RemappedChannel::capacity_fraction() const noexcept {
  return static_cast<double>(remap_.size()) /
         static_cast<double>(stack_.geometry().beats_per_pc());
}

Result<std::uint64_t> RemappedChannel::physical_beat(
    std::uint64_t logical) const {
  if (logical >= remap_.size()) {
    return out_of_range("logical beat beyond remapped capacity");
  }
  return static_cast<std::uint64_t>(remap_[logical]);
}

Status RemappedChannel::write_beat(std::uint64_t logical,
                                   const hbm::Beat& data) {
  auto physical = physical_beat(logical);
  if (!physical.is_ok()) return physical.status();
  return stack_.write_beat(pc_local_, physical.value(), data);
}

Result<hbm::Beat> RemappedChannel::read_beat(std::uint64_t logical) {
  auto physical = physical_beat(logical);
  if (!physical.is_ok()) return physical.status();
  return stack_.read_beat(pc_local_, physical.value());
}

}  // namespace hbmvolt::mitigate
