// Remapping allocator: a contiguous, fault-free logical address space on
// top of an undervolted PC with retired rows.
//
// Row retirement (row_retirement.hpp) says *which* beats to avoid; this
// allocator gives applications what they actually want -- a dense
// logical beat range [0, usable_beats) transparently remapped around the
// retired rows, so existing sequential code runs unmodified on the
// reduced-capacity, reduced-voltage device.  The remap table is the
// software analogue of a DRAM row-repair fuse map.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "hbm/stack.hpp"
#include "mitigate/row_retirement.hpp"

namespace hbmvolt::mitigate {

class RemappedChannel {
 public:
  /// Builds the logical->physical beat map for `pc_global` from the
  /// retirement map (which must cover that PC at the target voltage).
  RemappedChannel(hbm::HbmStack& stack, unsigned pc_local,
                  const RetirementMap& retirement);

  /// Beats usable after remapping.
  [[nodiscard]] std::uint64_t usable_beats() const noexcept {
    return remap_.size();
  }
  /// Fraction of the PC's physical capacity that remains addressable.
  [[nodiscard]] double capacity_fraction() const noexcept;

  /// Physical beat backing a logical one.
  [[nodiscard]] Result<std::uint64_t> physical_beat(
      std::uint64_t logical) const;

  Status write_beat(std::uint64_t logical, const hbm::Beat& data);
  Result<hbm::Beat> read_beat(std::uint64_t logical);

 private:
  hbm::HbmStack& stack_;
  unsigned pc_local_;
  std::vector<std::uint32_t> remap_;  // logical index -> physical beat
};

}  // namespace hbmvolt::mitigate
