// Row retirement: trade capacity for correctness below the guardband.
//
// The paper's fault map enables a three-factor trade-off at pseudo-
// channel granularity (Fig 6).  Because faults cluster in small regions
// (paper §I bullet 3), a finer-grained mitigation is far cheaper: retire
// exactly the DRAM rows that contain stuck cells at the target voltage
// and keep the rest of the PC -- the Chang et al. [12] style of
// mitigation, built here on this model's fault maps.  The
// ext_row_retirement bench quantifies the capacity cost, and how much
// clustering reduces it.

#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "faults/fault_overlay.hpp"
#include "hbm/geometry.hpp"

namespace hbmvolt::mitigate {

/// Immutable set of retired rows per PC at one voltage.
class RetirementMap {
 public:
  /// Scans every PC's stuck-cell overlay at voltage v and retires each
  /// (bank, row) containing at least one stuck cell.
  static RetirementMap build(faults::FaultInjector& injector, Millivolts v);

  /// ECC-aware variant: retires only rows containing at least
  /// `min_faults_per_row` stuck cells.  With SECDED below (one corrected
  /// bit per 72-bit codeword), threshold 2 keeps every row whose faults
  /// the code can absorb, cutting the capacity cost of retirement.
  static RetirementMap build_filtered(faults::FaultInjector& injector,
                                      Millivolts v,
                                      unsigned min_faults_per_row);

  /// Builds for a single PC (other PCs left unretired).
  static RetirementMap build_for_pc(faults::FaultInjector& injector,
                                    unsigned pc_global, Millivolts v);

  [[nodiscard]] Millivolts voltage() const noexcept { return voltage_; }

  [[nodiscard]] bool row_retired(unsigned pc_global, unsigned bank,
                                 std::uint64_t row) const;
  [[nodiscard]] bool beat_retired(unsigned pc_global,
                                  std::uint64_t beat) const;

  [[nodiscard]] std::uint64_t rows_retired(unsigned pc_global) const;
  [[nodiscard]] std::uint64_t rows_retired_total() const;
  [[nodiscard]] std::uint64_t rows_per_pc() const noexcept {
    return geometry_.rows_per_bank() * geometry_.banks_per_pc;
  }

  /// Fraction of the device's capacity that survives retirement.
  [[nodiscard]] double capacity_fraction() const;

  /// Per-PC surviving capacity fraction.
  [[nodiscard]] double pc_capacity_fraction(unsigned pc_global) const;

 private:
  explicit RetirementMap(const hbm::HbmGeometry& geometry)
      : geometry_(geometry) {}

  void retire_overlay(unsigned pc_global, const faults::FaultOverlay& overlay,
                      unsigned min_faults_per_row = 1);

  [[nodiscard]] std::uint64_t row_index(unsigned bank,
                                        std::uint64_t row) const {
    return row * geometry_.banks_per_pc + bank;
  }

  hbm::HbmGeometry geometry_;
  Millivolts voltage_{0};
  // Per PC, a bitmap over (row, bank) pairs.
  std::vector<std::vector<bool>> retired_;
};

}  // namespace hbmvolt::mitigate
