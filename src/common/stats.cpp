#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"

namespace hbmvolt {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double inverse_normal_cdf(double p) {
  HBMVOLT_REQUIRE(p > 0.0 && p < 1.0, "probability must be in (0,1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double z_critical(double confidence) {
  HBMVOLT_REQUIRE(confidence > 0.0 && confidence < 1.0,
                  "confidence must be in (0,1)");
  return inverse_normal_cdf(0.5 + confidence / 2.0);
}

ConfidenceInterval mean_confidence_interval(const RunningStats& stats,
                                            double confidence) {
  ConfidenceInterval ci;
  if (stats.count() == 0) return ci;
  const double z = z_critical(confidence);
  const double se =
      stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  ci.half_width = z * se;
  ci.lower = stats.mean() - ci.half_width;
  ci.upper = stats.mean() + ci.half_width;
  return ci;
}

std::size_t required_runs(double error_margin, double confidence,
                          std::uint64_t population, double p) {
  HBMVOLT_REQUIRE(error_margin > 0.0, "error margin must be positive");
  const double t = z_critical(confidence);
  const double base = t * t * p * (1.0 - p) / (error_margin * error_margin);
  if (population == 0) {
    return static_cast<std::size_t>(std::ceil(base));
  }
  const auto big_n = static_cast<double>(population);
  const double n = big_n / (1.0 + error_margin * error_margin * (big_n - 1.0) /
                                      (t * t * p * (1.0 - p)));
  return static_cast<std::size_t>(std::ceil(n));
}

double achieved_error_margin(std::size_t runs, double confidence,
                             std::uint64_t population, double p) {
  HBMVOLT_REQUIRE(runs > 0, "runs must be positive");
  const double t = z_critical(confidence);
  const auto n = static_cast<double>(runs);
  if (population == 0) {
    return t * std::sqrt(p * (1.0 - p) / n);
  }
  const auto big_n = static_cast<double>(population);
  // Invert n = N / (1 + e^2 (N-1) / (t^2 p(1-p))) for e.
  const double e2 =
      (big_n / n - 1.0) * t * t * p * (1.0 - p) / (big_n - 1.0);
  return std::sqrt(std::max(e2, 0.0));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  HBMVOLT_REQUIRE(bins > 0, "histogram needs at least one bin");
  HBMVOLT_REQUIRE(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lower(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_upper(std::size_t bin) const {
  return bin_lower(bin + 1);
}

double Histogram::quantile(double q) const {
  HBMVOLT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cumulative + c >= target) {
      const double frac = c > 0 ? (target - cumulative) / c : 0.0;
      return bin_lower(i) + frac * (bin_upper(i) - bin_lower(i));
    }
    cumulative += c;
  }
  return hi_;
}

}  // namespace hbmvolt
