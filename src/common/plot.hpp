// Terminal line-chart renderer for the figure benches: draws multiple
// series on an ASCII grid with linear or log10 y-axes, so the bench
// output shows the *shape* of each paper figure, not just its table.
//
//   AsciiChart chart({.width = 60, .height = 16, .y_log = true});
//   chart.add_series('0', fig4_hbm0);   // vector<(x, y)>
//   chart.add_series('1', fig4_hbm1);
//   std::cout << chart.render();

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hbmvolt {

struct ChartOptions {
  std::size_t width = 64;    // plot-area columns
  std::size_t height = 16;   // plot-area rows
  bool y_log = false;        // log10 y-axis (zero/negative values dropped)
  /// Floor for the log axis (values below clamp to it).
  double log_floor = 1e-12;
  std::string x_label;
  std::string y_label;
};

class AsciiChart {
 public:
  explicit AsciiChart(ChartOptions options) : options_(options) {}

  struct Point {
    double x;
    double y;
  };

  /// Adds a series drawn with `marker`.  Series are drawn in insertion
  /// order; later series overdraw earlier ones where they collide.
  void add_series(char marker, std::vector<Point> points);

  /// Renders the grid with y-axis tick labels on the left and the x
  /// range on the bottom line.  Empty charts render a placeholder.
  [[nodiscard]] std::string render() const;

 private:
  struct Series {
    char marker;
    std::vector<Point> points;
  };

  [[nodiscard]] double transform_y(double y) const;

  ChartOptions options_;
  std::vector<Series> series_;
};

}  // namespace hbmvolt
