#include "common/ini.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hbmvolt {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Strips a trailing comment that is not inside the value's leading text
/// (simple rule: ';' or '#' preceded by whitespace or at start).
std::string_view strip_comment(std::string_view line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if ((line[i] == ';' || line[i] == '#') &&
        (i == 0 || std::isspace(static_cast<unsigned char>(line[i - 1])))) {
      return line.substr(0, i);
    }
  }
  return line;
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

Result<IniFile> IniFile::parse(std::string_view text) {
  IniFile ini;
  std::string section;
  std::size_t line_number = 0;
  std::size_t position = 0;

  while (position <= text.size()) {
    const std::size_t end = text.find('\n', position);
    std::string_view line =
        text.substr(position, end == std::string_view::npos
                                  ? std::string_view::npos
                                  : end - position);
    position = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_number;

    line = trim(strip_comment(line));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return invalid_argument("line " + std::to_string(line_number) +
                                ": malformed section header");
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return invalid_argument("line " + std::to_string(line_number) +
                              ": expected key = value");
    }
    const std::string key{trim(line.substr(0, eq))};
    if (key.empty()) {
      return invalid_argument("line " + std::to_string(line_number) +
                              ": empty key");
    }
    ini.sections_[section][key] = std::string(trim(line.substr(eq + 1)));
  }
  return ini;
}

Result<IniFile> IniFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return not_found("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool IniFile::has(const std::string& section, const std::string& key) const {
  const auto it = sections_.find(section);
  return it != sections_.end() && it->second.contains(key);
}

std::optional<std::string> IniFile::get(const std::string& section,
                                        const std::string& key) const {
  const auto it = sections_.find(section);
  if (it == sections_.end()) return std::nullopt;
  const auto kv = it->second.find(key);
  if (kv == it->second.end()) return std::nullopt;
  return kv->second;
}

Result<std::string> IniFile::get_string(const std::string& section,
                                        const std::string& key) const {
  auto value = get(section, key);
  if (!value.has_value()) {
    return not_found("[" + section + "] " + key + " missing");
  }
  return *value;
}

Result<double> IniFile::get_double(const std::string& section,
                                   const std::string& key) const {
  auto value = get_string(section, key);
  if (!value.is_ok()) return value.status();
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.value().c_str(), &end);
  if (end == value.value().c_str() || *end != '\0' || errno == ERANGE) {
    return invalid_argument("[" + section + "] " + key +
                            ": not a number: " + value.value());
  }
  return parsed;
}

Result<std::int64_t> IniFile::get_int(const std::string& section,
                                      const std::string& key) const {
  auto value = get_string(section, key);
  if (!value.is_ok()) return value.status();
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.value().c_str(), &end, 0);
  if (end == value.value().c_str() || *end != '\0' || errno == ERANGE) {
    return invalid_argument("[" + section + "] " + key +
                            ": not an integer: " + value.value());
  }
  return static_cast<std::int64_t>(parsed);
}

Result<std::uint64_t> IniFile::get_uint64(const std::string& section,
                                          const std::string& key) const {
  auto value = get_string(section, key);
  if (!value.is_ok()) return value.status();
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed =
      std::strtoull(value.value().c_str(), &end, 0);
  if (end == value.value().c_str() || *end != '\0' || errno == ERANGE ||
      value.value().front() == '-') {
    return invalid_argument("[" + section + "] " + key +
                            ": not an unsigned integer: " + value.value());
  }
  return static_cast<std::uint64_t>(parsed);
}

Result<bool> IniFile::get_bool(const std::string& section,
                               const std::string& key) const {
  auto value = get_string(section, key);
  if (!value.is_ok()) return value.status();
  const std::string v = lower(value.value());
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return invalid_argument("[" + section + "] " + key +
                          ": not a boolean: " + value.value());
}

Result<double> IniFile::get_double_or(const std::string& section,
                                      const std::string& key,
                                      double fallback) const {
  if (!has(section, key)) return fallback;
  return get_double(section, key);
}

Result<std::int64_t> IniFile::get_int_or(const std::string& section,
                                         const std::string& key,
                                         std::int64_t fallback) const {
  if (!has(section, key)) return fallback;
  return get_int(section, key);
}

Result<bool> IniFile::get_bool_or(const std::string& section,
                                  const std::string& key,
                                  bool fallback) const {
  if (!has(section, key)) return fallback;
  return get_bool(section, key);
}

void IniFile::set(const std::string& section, const std::string& key,
                  std::string value) {
  sections_[section][key] = std::move(value);
}

std::vector<std::string> IniFile::sections() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [name, keys] : sections_) out.push_back(name);
  return out;
}

std::vector<std::string> IniFile::keys(const std::string& section) const {
  std::vector<std::string> out;
  const auto it = sections_.find(section);
  if (it == sections_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [key, value] : it->second) out.push_back(key);
  return out;
}

std::string IniFile::to_string() const {
  std::ostringstream os;
  for (const auto& [section, keys] : sections_) {
    if (!section.empty()) os << '[' << section << "]\n";
    for (const auto& [key, value] : keys) {
      os << key << " = " << value << '\n';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hbmvolt
