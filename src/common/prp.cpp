#include "common/prp.hpp"

#include "common/status.hpp"

namespace hbmvolt {

FeistelPermutation::FeistelPermutation(std::uint64_t n, std::uint64_t seed)
    : n_(n) {
  HBMVOLT_REQUIRE(n >= 1, "permutation domain must be non-empty");
  // Smallest b with (2^b)^2 >= n; the Feistel block is 2b bits wide.
  half_bits_ = 1;
  while ((static_cast<std::uint64_t>(1) << (2 * half_bits_)) < n_ &&
         half_bits_ < 31) {
    ++half_bits_;
  }
  half_mask_ = (static_cast<std::uint64_t>(1) << half_bits_) - 1;
  for (int r = 0; r < kRounds; ++r) {
    round_keys_[r] = mix_seed(seed, static_cast<std::uint64_t>(r) + 1);
  }
}

std::uint64_t FeistelPermutation::permute_once(std::uint64_t x) const noexcept {
  std::uint64_t left = x >> half_bits_;
  std::uint64_t right = x & half_mask_;
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t f = splitmix64(right ^ round_keys_[r]) & half_mask_;
    const std::uint64_t next_right = left ^ f;
    left = right;
    right = next_right;
  }
  return (left << half_bits_) | right;
}

std::uint64_t FeistelPermutation::unpermute_once(std::uint64_t y) const noexcept {
  std::uint64_t left = y >> half_bits_;
  std::uint64_t right = y & half_mask_;
  for (int r = kRounds - 1; r >= 0; --r) {
    const std::uint64_t prev_right = left;
    const std::uint64_t f = splitmix64(prev_right ^ round_keys_[r]) & half_mask_;
    const std::uint64_t prev_left = right ^ f;
    left = prev_left;
    right = prev_right;
  }
  return (left << half_bits_) | right;
}

std::uint64_t FeistelPermutation::forward(std::uint64_t x) const noexcept {
  // Cycle-walk until the image lands back inside [0, n).  The expected
  // number of iterations is domain/n < 4.
  std::uint64_t y = permute_once(x);
  while (y >= n_) y = permute_once(y);
  return y;
}

std::uint64_t FeistelPermutation::inverse(std::uint64_t y) const noexcept {
  std::uint64_t x = unpermute_once(y);
  while (x >= n_) x = unpermute_once(x);
  return x;
}

}  // namespace hbmvolt
