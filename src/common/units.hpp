// Strong unit types used throughout hbmvolt.
//
// Voltages that participate in sweeps are held as integer millivolts
// (`Millivolts`) so that a 10 mV-step sweep from 1200 down to 810 hits each
// grid point exactly (the paper's Algorithm 1 sweeps V_nom..V_critical in
// 10 mV steps).  Analog quantities (watts, amps, farads/second) use doubles
// wrapped in thin tagged types to prevent accidental unit mixing.

#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace hbmvolt {

/// Integer millivolts -- exact arithmetic for voltage sweep grids.
struct Millivolts {
  int value = 0;

  constexpr Millivolts() = default;
  constexpr explicit Millivolts(int mv) : value(mv) {}

  [[nodiscard]] constexpr double volts() const { return value / 1000.0; }

  friend constexpr auto operator<=>(Millivolts, Millivolts) = default;
  friend constexpr Millivolts operator+(Millivolts a, Millivolts b) {
    return Millivolts{a.value + b.value};
  }
  friend constexpr Millivolts operator-(Millivolts a, Millivolts b) {
    return Millivolts{a.value - b.value};
  }
};

constexpr Millivolts from_volts(double v) {
  return Millivolts{static_cast<int>(v * 1000.0 + (v >= 0 ? 0.5 : -0.5))};
}

namespace detail {

/// CRTP-free tagged double.  Each Tag instantiation is a distinct type.
template <typename Tag>
struct Quantity {
  double value = 0.0;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  friend constexpr auto operator<=>(Quantity, Quantity) = default;
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value + b.value};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value - b.value};
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.value * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{a.value * s};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.value / s};
  }
  /// Ratio of two like quantities is a plain double.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value / b.value;
  }
};

struct WattsTag {};
struct AmpsTag {};
struct OhmsTag {};
struct HertzTag {};
struct SecondsTag {};
struct JoulesTag {};
struct GigabytesPerSecondTag {};
struct CelsiusTag {};

}  // namespace detail

using Watts = detail::Quantity<detail::WattsTag>;
using Amps = detail::Quantity<detail::AmpsTag>;
using Ohms = detail::Quantity<detail::OhmsTag>;
using Hertz = detail::Quantity<detail::HertzTag>;
using Seconds = detail::Quantity<detail::SecondsTag>;
using Joules = detail::Quantity<detail::JoulesTag>;
using GigabytesPerSecond = detail::Quantity<detail::GigabytesPerSecondTag>;
using Celsius = detail::Quantity<detail::CelsiusTag>;

/// P = V * I (V given in millivolts).
constexpr Watts power_from(Millivolts v, Amps i) {
  return Watts{v.volts() * i.value};
}

/// I = P / V.
constexpr Amps current_from(Watts p, Millivolts v) {
  return Amps{p.value / v.volts()};
}

/// E = P * t.
constexpr Joules energy_from(Watts p, Seconds t) {
  return Joules{p.value * t.value};
}

/// Simulation timestamps in picoseconds (64-bit: ~213 days of sim time).
using SimTime = std::uint64_t;

constexpr SimTime kPicosPerSecond = 1'000'000'000'000ULL;

constexpr Seconds to_seconds(SimTime t) {
  return Seconds{static_cast<double>(t) / static_cast<double>(kPicosPerSecond)};
}

}  // namespace hbmvolt
