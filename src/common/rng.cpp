#include "common/rng.hpp"

#include <cmath>

namespace hbmvolt {

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() noexcept {
  // Box-Muller; discard the second variate to keep the generator stateless
  // with respect to call parity.
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

}  // namespace hbmvolt
