#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace hbmvolt {
namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

/// HBMVOLT_LOG_LEVEL, if set and parsable.  Read on every call so tests
/// (and long-lived embedders) can change it with setenv.
std::optional<LogLevel> env_level() noexcept {
  const char* value = std::getenv("HBMVOLT_LOG_LEVEL");
  if (value == nullptr) return std::nullopt;
  return parse_log_level(value);
}

LogLevel initial_level() noexcept {
  return env_level().value_or(LogLevel::kWarn);
}

std::atomic<LogLevel> g_level{initial_level()};

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  const auto matches = [name](std::string_view expected) {
    if (name.size() != expected.size()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i] >= 'A' && name[i] <= 'Z'
                         ? static_cast<char>(name[i] - 'A' + 'a')
                         : name[i];
      if (c != expected[i]) return false;
    }
    return true;
  };
  if (matches("debug") || matches("0")) return LogLevel::kDebug;
  if (matches("info") || matches("1")) return LogLevel::kInfo;
  if (matches("warn") || matches("warning") || matches("2")) {
    return LogLevel::kWarn;
  }
  if (matches("error") || matches("3")) return LogLevel::kError;
  if (matches("off") || matches("none") || matches("4")) return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(env_level().value_or(level));
}

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;

  // One formatted buffer, one fwrite: concurrent sweep workers never
  // interleave mid-line (three separate stderr writes used to).  Long
  // messages truncate rather than spill; the newline always lands.
  char buffer[1024];
  int used = std::snprintf(buffer, sizeof(buffer), "[hbmvolt %s] ",
                           level_tag(level));
  if (used < 0) return;

  va_list args;
  va_start(args, fmt);
  const int body = std::vsnprintf(buffer + used, sizeof(buffer) - used - 1,
                                  fmt, args);
  va_end(args);
  if (body > 0) {
    const int room = static_cast<int>(sizeof(buffer)) - used - 1;
    used += body < room ? body : room;
  }
  buffer[used++] = '\n';

  static std::mutex io_mutex;
  const std::lock_guard<std::mutex> lock(io_mutex);
  std::fwrite(buffer, 1, static_cast<std::size_t>(used), stderr);
}

}  // namespace hbmvolt
