#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace hbmvolt {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[hbmvolt %s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace hbmvolt
