// Pseudo-random permutation (PRP) over an arbitrary-size index domain.
//
// The fault model needs a deterministic bijection rank <-> cell so that the
// set of faulty cells at any voltage is "the cells with rank < k": monotone
// in k, O(1) membership, O(k) enumeration, and reproducible from a seed
// without materializing per-cell state.  We build the PRP as a balanced
// Feistel network over the smallest power-of-4 domain covering [0, n),
// using cycle-walking to restrict it to [0, n).

#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace hbmvolt {

/// Deterministic bijection on [0, n).  Copyable, O(1) storage.
class FeistelPermutation {
 public:
  /// Builds a permutation of [0, n) keyed by `seed`.  n must be >= 1.
  FeistelPermutation(std::uint64_t n, std::uint64_t seed);

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }

  /// Forward mapping; input must be < size().
  [[nodiscard]] std::uint64_t forward(std::uint64_t x) const noexcept;

  /// Inverse mapping; input must be < size().
  [[nodiscard]] std::uint64_t inverse(std::uint64_t y) const noexcept;

 private:
  static constexpr int kRounds = 6;

  [[nodiscard]] std::uint64_t permute_once(std::uint64_t x) const noexcept;
  [[nodiscard]] std::uint64_t unpermute_once(std::uint64_t y) const noexcept;

  std::uint64_t n_ = 1;
  int half_bits_ = 1;          // bits per Feistel half
  std::uint64_t half_mask_ = 1;
  std::uint64_t round_keys_[kRounds] = {};
};

}  // namespace hbmvolt
