#include "common/json.hpp"

#include <cerrno>
#include <cstdlib>

namespace hbmvolt::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::int64_t Value::as_int() const noexcept {
  if (kind != Kind::kNumber) return 0;
  return is_integer ? integer : static_cast<std::int64_t>(number);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    Value value;
    HBMVOLT_RETURN_IF_ERROR(parse_value(value, /*depth=*/0));
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status fail(const char* what) const {
    return data_loss(std::string("JSON parse error at offset ") +
                     std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return parse_string(out.string);
    }
    if (consume_literal("true")) {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      return Status::ok();
    }
    if (consume_literal("false")) {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      return Status::ok();
    }
    if (consume_literal("null")) {
      out.kind = Value::Kind::kNull;
      return Status::ok();
    }
    return parse_number(out);
  }

  Status parse_object(Value& out, int depth) {
    ++pos_;  // '{'
    out.kind = Value::Kind::kObject;
    skip_ws();
    if (consume('}')) return Status::ok();
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      HBMVOLT_RETURN_IF_ERROR(parse_string(key));
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      Value value;
      HBMVOLT_RETURN_IF_ERROR(parse_value(value, depth + 1));
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Status::ok();
      return fail("expected ',' or '}'");
    }
  }

  Status parse_array(Value& out, int depth) {
    ++pos_;  // '['
    out.kind = Value::Kind::kArray;
    skip_ws();
    if (consume(']')) return Status::ok();
    for (;;) {
      Value value;
      HBMVOLT_RETURN_IF_ERROR(parse_value(value, depth + 1));
      out.items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Status::ok();
      return fail("expected ',' or ']'");
    }
  }

  Status parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode (no surrogate-pair handling; our writers only
          // emit \u for control characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Status parse_number(Value& out) {
    const std::size_t start = pos_;
    consume('-');
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits_start) return fail("expected a value");
    bool integral = true;
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      if (consume('.')) {
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
          ++pos_;
        }
      }
      if (consume('e') || consume('E')) {
        if (!consume('+')) consume('-');
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
          ++pos_;
        }
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.kind = Value::Kind::kNumber;
    errno = 0;
    if (integral) {
      out.integer = std::strtoll(token.c_str(), nullptr, 10);
      out.is_integer = errno != ERANGE;
      out.number = static_cast<double>(out.integer);
      if (!out.is_integer) out.number = std::strtod(token.c_str(), nullptr);
    } else {
      out.number = std::strtod(token.c_str(), nullptr);
    }
    return Status::ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace hbmvolt::json
