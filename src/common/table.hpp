// Tabular output helpers used by the report generators and benches: an
// ASCII table renderer for terminal output and a CSV writer for archiving
// figure data.

#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace hbmvolt {

/// Column-aligned ASCII table.  Usage: set_header, add_row, render.
class AsciiTable {
 public:
  void set_header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  /// Adds a horizontal separator line after the current last row.
  void add_separator();

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Minimal CSV writer (RFC 4180 quoting).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& os_;
};

/// Formats a double with `digits` significant digits, trimming zeros.
[[nodiscard]] std::string format_double(double value, int digits = 4);

/// Formats a fraction as a percentage string ("12.3%", "<0.01%", "0%").
[[nodiscard]] std::string format_percent(double fraction);

/// Formats a voltage in millivolts as "0.95V".
[[nodiscard]] std::string format_millivolts(int mv);

}  // namespace hbmvolt
