// Statistics utilities: running moments, confidence intervals, and the
// statistical-fault-injection sample sizing of Leveugle et al. (DATE 2009)
// that the paper uses to justify batchSize = 130 (7% error margin at 90%
// confidence).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hbmvolt {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided z critical value for a given confidence level in (0, 1)
/// (e.g. 0.90 -> 1.645).  Uses the Acklam inverse-normal approximation.
[[nodiscard]] double z_critical(double confidence);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over (0, 1)).
[[nodiscard]] double inverse_normal_cdf(double p);

struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double half_width = 0.0;
};

/// Normal-approximation CI for the mean of `stats` at `confidence`.
[[nodiscard]] ConfidenceInterval mean_confidence_interval(
    const RunningStats& stats, double confidence);

// --- Statistical fault injection sizing (Leveugle et al., DATE 2009) ----
//
// For estimating a proportion p over a population of N cells with error
// margin e at confidence c, the required number of trials is
//
//     n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))
//
// with t the two-sided normal critical value for c.  The paper instantiates
// this with the worst case p = 0.5 and obtains 130 runs for e = 7%, c = 90%.

struct SamplePlan {
  std::size_t runs = 0;
  double error_margin = 0.0;
  double confidence = 0.0;
};

/// Number of runs for a target error margin (worst-case p = 0.5 unless
/// given).  `population` may be huge (cell counts); pass 0 for "infinite".
[[nodiscard]] std::size_t required_runs(double error_margin, double confidence,
                                        std::uint64_t population = 0,
                                        double p = 0.5);

/// Error margin achieved by a given number of runs (inverse of the above).
[[nodiscard]] double achieved_error_margin(std::size_t runs, double confidence,
                                           std::uint64_t population = 0,
                                           double p = 0.5);

/// Simple fixed-width histogram over [lo, hi); out-of-range samples clamp
/// into the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] double bin_upper(std::size_t bin) const;
  /// Value below which `q` of the mass lies (bin-interpolated).
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hbmvolt
