// Minimal INI parser/writer for experiment configuration files.
//
// Supported syntax:
//   [section]
//   key = value        ; comment
//   # full-line comment
//
// Keys are case-sensitive; whitespace around section names, keys and
// values is trimmed; later duplicates overwrite earlier ones.  No
// external dependencies -- the experiment tools must build on a bare
// lab machine.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hbmvolt {

class IniFile {
 public:
  IniFile() = default;

  /// Parses INI text; reports the first syntax error with its line number.
  static Result<IniFile> parse(std::string_view text);

  /// Reads and parses a file.
  static Result<IniFile> load(const std::string& path);

  [[nodiscard]] bool has(const std::string& section,
                         const std::string& key) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;

  /// Typed getters: NOT_FOUND if absent, INVALID_ARGUMENT if unparsable.
  [[nodiscard]] Result<std::string> get_string(const std::string& section,
                                               const std::string& key) const;
  [[nodiscard]] Result<double> get_double(const std::string& section,
                                          const std::string& key) const;
  [[nodiscard]] Result<std::int64_t> get_int(const std::string& section,
                                             const std::string& key) const;
  [[nodiscard]] Result<std::uint64_t> get_uint64(const std::string& section,
                                                 const std::string& key) const;
  /// Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
  [[nodiscard]] Result<bool> get_bool(const std::string& section,
                                      const std::string& key) const;

  /// Convenience: typed value or fallback when the key is absent.
  /// Parse errors still propagate as kInvalidArgument.
  [[nodiscard]] Result<double> get_double_or(const std::string& section,
                                             const std::string& key,
                                             double fallback) const;
  [[nodiscard]] Result<std::int64_t> get_int_or(const std::string& section,
                                                const std::string& key,
                                                std::int64_t fallback) const;
  [[nodiscard]] Result<bool> get_bool_or(const std::string& section,
                                         const std::string& key,
                                         bool fallback) const;

  void set(const std::string& section, const std::string& key,
           std::string value);

  [[nodiscard]] std::vector<std::string> sections() const;
  [[nodiscard]] std::vector<std::string> keys(const std::string& section) const;

  /// Serializes back to INI text (sections and keys sorted).
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

}  // namespace hbmvolt
