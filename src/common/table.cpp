#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace hbmvolt {

void AsciiTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void AsciiTable::add_separator() { rows_.push_back(Row{{}, true}); }

void AsciiTable::render(std::ostream& os) const {
  // Compute column widths over header and all rows.
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row.cells);

  auto print_rule = [&os, &widths]() {
    os << '+';
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_cells = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << cell;
      for (std::size_t p = cell.size(); p < widths[i] + 1; ++p) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  print_rule();
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
  print_rule();
}

std::string AsciiTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string format_percent(double fraction) {
  if (fraction <= 0.0) return "0%";
  const double pct = fraction * 100.0;
  if (pct < 0.01) return "<0.01%";
  char buf[32];
  if (pct < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f%%", pct);
  } else if (pct < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f%%", pct);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f%%", pct);
  }
  return buf;
}

std::string format_millivolts(int mv) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fV", mv / 1000.0);
  return buf;
}

}  // namespace hbmvolt
