// Minimal leveled logging to stderr.  The experiment drivers use INFO for
// sweep progress; the library itself stays quiet below WARN by default.

#pragma once

#include <optional>
#include <string_view>

namespace hbmvolt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parses a level name ("debug", "info", "warn", "error", "off",
/// case-insensitive) or a numeric level ("0".."4").
[[nodiscard]] std::optional<LogLevel> parse_log_level(
    std::string_view name) noexcept;

/// Global threshold; messages below it are dropped.  The HBMVOLT_LOG_LEVEL
/// environment variable, when set to a parsable level, wins over the
/// programmatic value -- so verbosity can be cranked on any binary without
/// touching its code.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// printf-style logging.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define HBMVOLT_LOG_DEBUG(...) \
  ::hbmvolt::log_message(::hbmvolt::LogLevel::kDebug, __VA_ARGS__)
#define HBMVOLT_LOG_INFO(...) \
  ::hbmvolt::log_message(::hbmvolt::LogLevel::kInfo, __VA_ARGS__)
#define HBMVOLT_LOG_WARN(...) \
  ::hbmvolt::log_message(::hbmvolt::LogLevel::kWarn, __VA_ARGS__)
#define HBMVOLT_LOG_ERROR(...) \
  ::hbmvolt::log_message(::hbmvolt::LogLevel::kError, __VA_ARGS__)

}  // namespace hbmvolt
