// Minimal JSON value model and recursive-descent parser.
//
// The campaign writes several JSON artifacts (manifest.json,
// telemetry.jsonl, checkpoint.json); checkpoint/resume is the first
// feature that must *read* one back.  This parser covers the full JSON
// grammar (objects, arrays, strings with escapes, numbers, literals) with
// two properties the checkpoint depends on:
//
//  * integral tokens (no '.', no exponent) are kept as exact int64 values
//    alongside the double, so 64-bit counters round-trip losslessly;
//  * parse failures are Status values, never exceptions or aborts -- a
//    truncated checkpoint.json (the process died mid-write before the
//    atomic rename existed, or a user edited it) must degrade to "start
//    fresh", not crash the campaign.
//
// Floating-point figures are not serialized as decimal JSON numbers at
// all: checkpoint.json stores doubles as 16-digit hex bit patterns (see
// core/checkpoint.cpp), because resume must reproduce byte-identical
// artifacts and a decimal round-trip is one ulp away from a diff.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace hbmvolt::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Exact value when the token was integral; `number` is always set too.
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<Value> items;  // kArray
  std::vector<std::pair<std::string, Value>> members;  // kObject, in order

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  /// Integral value of this number (0 when not a number; truncates
  /// non-integral doubles).
  [[nodiscard]] std::int64_t as_int() const noexcept;
  [[nodiscard]] std::uint64_t as_uint() const noexcept {
    return static_cast<std::uint64_t>(as_int());
  }
};

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// garbage is an error).
[[nodiscard]] Result<Value> parse(std::string_view text);

}  // namespace hbmvolt::json
