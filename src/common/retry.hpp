// Bounded-retry policy for host-side transactions.
//
// The paper's experiments run for hours against a hostile platform: PMBus
// transactions NACK, PEC catches wire corruption, sensors drop out.  All
// of those are *transient* -- the correct host response is to retry the
// transaction, not to abort the campaign or average the failure into a
// measurement.  This header is the one retry implementation every driver
// shares, so the knobs (attempt budget, which status codes are worth
// retrying) live in one place and the telemetry counters
// (retry.attempts / retry.recovered / retry.exhausted / retry.backoff_us,
// plus per-code retry.nack / retry.data_loss / retry.unavailable) give an
// exact account of what the harness absorbed.
//
// Backoff is *simulated*: the model has no wall-clock to wait on, so the
// deterministic exponential backoff is accounted (summed into
// retry.backoff_us) rather than slept.  Determinism matters more than
// realism here -- a retried run must produce byte-identical figures (see
// docs/robustness.md), which a real sleep would not threaten but a
// time-dependent decision would.
//
// Thread-safety: retry_status/retry_result keep all state on the stack
// and the telemetry counters are lock-free atomics, so concurrent retries
// from sweep workers (board traffic dispatch) are safe.

#pragma once

#include <cstdint>
#include <functional>

#include "common/status.hpp"

namespace hbmvolt {

struct RetryPolicy {
  /// Total attempts, including the first (1 = no retries).
  unsigned max_attempts = 4;
  /// Simulated backoff before the first retry, doubling per failure.
  std::uint64_t backoff_start_us = 50;
  /// Cap on a single simulated backoff interval.
  std::uint64_t backoff_cap_us = 10'000;
  // Which failure classes are worth retrying.  The defaults retry every
  // transient bus condition; programming errors (kInvalidArgument,
  // kOutOfRange, ...) never retry.
  bool retry_nack = true;         // kNotFound: address NACK
  bool retry_data_loss = true;    // kDataLoss: PEC mismatch / bad read-back
  bool retry_unavailable = true;  // kUnavailable: device dropout

  [[nodiscard]] bool retryable(const Status& status) const noexcept;
  /// Simulated backoff after `failures` consecutive failures (>= 1).
  [[nodiscard]] std::uint64_t backoff_us(unsigned failures) const noexcept;
};

namespace retry_detail {
// Telemetry sinks (no-ops when telemetry is inactive); out-of-line so the
// template below does not pull telemetry headers into every driver.
void note_retry(const char* op, const Status& status,
                std::uint64_t backoff_us);
void note_recovered(const char* op, unsigned failures);
void note_exhausted(const char* op, const Status& status);
}  // namespace retry_detail

/// Runs `attempt` until it succeeds, fails non-retryably, or the attempt
/// budget is spent; returns the last status.
Status retry_status(const RetryPolicy& policy, const char* op,
                    const std::function<Status()>& attempt);

/// Result-returning flavor of retry_status; `attempt` is any callable
/// returning Result<T>.
template <typename Fn>
auto retry_result(const RetryPolicy& policy, const char* op,
                  const Fn& attempt) -> decltype(attempt()) {
  unsigned failures = 0;
  for (;;) {
    auto result = attempt();
    if (result.is_ok()) {
      if (failures > 0) retry_detail::note_recovered(op, failures);
      return result;
    }
    if (!policy.retryable(result.status())) return result;
    if (++failures >= policy.max_attempts) {
      retry_detail::note_exhausted(op, result.status());
      return result;
    }
    retry_detail::note_retry(op, result.status(),
                             policy.backoff_us(failures));
  }
}

}  // namespace hbmvolt
