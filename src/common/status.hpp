// Lightweight error-handling vocabulary for the hbmvolt library.
//
// The hardware-facing layers (PMBus transactions, AXI traffic, HBM stack
// access) can fail at runtime for reasons that are part of the modelled
// behavior -- a NACKed bus address, a PEC mismatch, a crashed HBM stack.
// Those paths return `Status` / `Result<T>` instead of throwing so callers
// can treat device failure as data (the paper's experiments *depend* on
// observing failures).  Programming errors (bad geometry, out-of-range
// indices) are still hard failures via HBMVOLT_REQUIRE.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace hbmvolt {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed a value outside the modelled range
  kOutOfRange,        // address/index beyond the configured geometry
  kUnavailable,       // device not responding (e.g. crashed HBM stack)
  kDataLoss,          // transfer completed but data integrity failed (PEC)
  kFailedPrecondition,// operation not legal in current device state
  kNotFound,          // no device at address / no such register
  kInternal,          // invariant violation inside the model
};

/// Human-readable name of a status code ("OK", "UNAVAILABLE", ...).
std::string_view to_string(StatusCode code) noexcept;

/// A status code plus an optional context message.  Cheap to copy when OK.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "UNAVAILABLE: stack crashed".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status out_of_range(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status data_loss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

/// Value-or-status.  A minimal `expected`-style type (the toolchain's
/// libstdc++ predates std::expected).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] const T& value() const& {
    require_ok();
    return *value_;
  }
  [[nodiscard]] T& value() & {
    require_ok();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "hbmvolt: Result::value() on error: %s\n",
                   status_.to_string().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // kOk iff value_ present
};

// Precondition check for programming errors (not modelled failures).
#define HBMVOLT_REQUIRE(cond, what)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "hbmvolt: precondition failed at %s:%d: %s\n",  \
                   __FILE__, __LINE__, (what));                            \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

// Early-return helper for Status-returning functions.
#define HBMVOLT_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::hbmvolt::Status status_ = (expr);          \
    if (!status_.is_ok()) return status_;        \
  } while (false)

}  // namespace hbmvolt
