// Deterministic random number generation.
//
// Every stochastic aspect of the model (process-variation lot, weak-cell
// placement, measurement noise) derives from a single device seed so that
// experiments are exactly reproducible.  We use SplitMix64 for hashing /
// stream-splitting and xoshiro256** for bulk generation -- both are public
// domain algorithms (Blackman & Vigna) re-implemented here.

#pragma once

#include <array>
#include <cstdint>

namespace hbmvolt {

/// One step of the SplitMix64 sequence starting at `x`.  Also usable as a
/// strong 64-bit mix/hash function.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Hash-combine for deriving independent sub-streams: seed -> (seed, key).
constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t key) noexcept {
  return splitmix64(seed ^ (0x9E3779B97F4A7C15ULL + key * 0xD1342543DE82EF95ULL));
}

/// Counter-seeded stream derivation for parallel workers: each worker's
/// generator is seeded from (root seed, counters) rather than drawn from a
/// shared generator, so the values a worker sees depend only on *which*
/// work item it is, never on thread scheduling or execution order.  The
/// counters are mixed pairwise (not XOR-folded), so (a=1,b=0) and
/// (a=0,b=1) yield unrelated streams.
constexpr std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t a,
                                    std::uint64_t b = 0,
                                    std::uint64_t c = 0) noexcept {
  return mix_seed(mix_seed(mix_seed(seed, a), b), c);
}

/// The per-PC worker stream of a campaign: f(campaign seed, stack,
/// channel, pc-within-channel).  Every per-PC random quantity (weak-cell
/// placement, process-variation draws, power-up contents) derives from
/// this, which is what makes the per-PC fan-out schedule-independent.
/// The structural address is folded back into the paper's global PC
/// numbering before mixing so the streams match fault maps recorded by
/// earlier (global-index-keyed) revisions of the model.
constexpr std::uint64_t pc_stream_seed(std::uint64_t seed, unsigned stack,
                                       unsigned channel, unsigned pc,
                                       unsigned pcs_per_stack,
                                       unsigned pcs_per_channel) noexcept {
  return mix_seed(seed, 0x9C0000ULL + stack * pcs_per_stack +
                            channel * pcs_per_channel + pc);
}

/// xoshiro256** 1.0 -- fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    // Seed the state via SplitMix64 per the authors' recommendation.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Standard normal via Box-Muller (one value per call; simple & adequate).
  double normal() noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hbmvolt
