#include "common/plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/status.hpp"

namespace hbmvolt {

void AsciiChart::add_series(char marker, std::vector<Point> points) {
  series_.push_back({marker, std::move(points)});
}

double AsciiChart::transform_y(double y) const {
  if (!options_.y_log) return y;
  return std::log10(std::max(y, options_.log_floor));
}

std::string AsciiChart::render() const {
  HBMVOLT_REQUIRE(options_.width >= 8 && options_.height >= 4,
                  "chart area too small");
  // Establish ranges over all drawable points.
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = x_min;
  double y_max = -x_min;
  std::size_t drawable = 0;
  for (const auto& series : series_) {
    for (const auto& point : series.points) {
      if (options_.y_log && point.y <= 0.0) continue;
      x_min = std::min(x_min, point.x);
      x_max = std::max(x_max, point.x);
      const double ty = transform_y(point.y);
      y_min = std::min(y_min, ty);
      y_max = std::max(y_max, ty);
      ++drawable;
    }
  }
  if (drawable == 0) return "(no data)\n";
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  // Grid, row 0 = top.
  std::vector<std::string> grid(options_.height,
                                std::string(options_.width, ' '));
  for (const auto& series : series_) {
    for (const auto& point : series.points) {
      if (options_.y_log && point.y <= 0.0) continue;
      const double fx = (point.x - x_min) / (x_max - x_min);
      const double fy = (transform_y(point.y) - y_min) / (y_max - y_min);
      const auto column = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(options_.width - 1)));
      const auto row_from_bottom = static_cast<std::size_t>(
          std::lround(fy * static_cast<double>(options_.height - 1)));
      grid[options_.height - 1 - row_from_bottom][column] = series.marker;
    }
  }

  // Y tick labels: top, middle, bottom (undo the log transform).
  const auto y_label_at = [&](double fraction) {
    const double ty = y_min + fraction * (y_max - y_min);
    const double y = options_.y_log ? std::pow(10.0, ty) : ty;
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%9.3g", y);
    return std::string(buf);
  };

  std::ostringstream os;
  if (!options_.y_label.empty()) os << options_.y_label << '\n';
  for (std::size_t row = 0; row < options_.height; ++row) {
    std::string label(9, ' ');
    if (row == 0) label = y_label_at(1.0);
    if (row == options_.height / 2) label = y_label_at(0.5);
    if (row == options_.height - 1) label = y_label_at(0.0);
    os << label << " |" << grid[row] << '\n';
  }
  os << std::string(9, ' ') << " +" << std::string(options_.width, '-')
     << '\n';
  char x_line[96];
  std::snprintf(x_line, sizeof(x_line), "%-.4g%*s%.4g", x_min,
                static_cast<int>(options_.width) - 6, "", x_max);
  os << std::string(11, ' ') << x_line;
  if (!options_.x_label.empty()) os << "  " << options_.x_label;
  os << '\n';
  return os.str();
}

}  // namespace hbmvolt
