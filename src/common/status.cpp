#include "common/status.hpp"

namespace hbmvolt {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{hbmvolt::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hbmvolt
