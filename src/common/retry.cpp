#include "common/retry.hpp"

#include "common/log.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt {

bool RetryPolicy::retryable(const Status& status) const noexcept {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return retry_nack;
    case StatusCode::kDataLoss:
      return retry_data_loss;
    case StatusCode::kUnavailable:
      return retry_unavailable;
    default:
      return false;
  }
}

std::uint64_t RetryPolicy::backoff_us(unsigned failures) const noexcept {
  if (failures == 0) return 0;
  std::uint64_t us = backoff_start_us;
  for (unsigned i = 1; i < failures; ++i) {
    us *= 2;
    if (us >= backoff_cap_us) return backoff_cap_us;
  }
  return us < backoff_cap_us ? us : backoff_cap_us;
}

namespace retry_detail {
namespace {

const char* code_counter(const Status& status) noexcept {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return "retry.nack";
    case StatusCode::kDataLoss:
      return "retry.data_loss";
    case StatusCode::kUnavailable:
      return "retry.unavailable";
    default:
      return "retry.other";
  }
}

}  // namespace

void note_retry(const char* op, const Status& status,
                std::uint64_t backoff_us) {
  (void)op;
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("retry.attempts");
    tel->count(code_counter(status));
    tel->count("retry.backoff_us", backoff_us);
  }
}

void note_recovered(const char* op, unsigned failures) {
  (void)op;
  (void)failures;
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("retry.recovered");
  }
}

void note_exhausted(const char* op, const Status& status) {
  if (auto* tel = telemetry::Telemetry::active()) {
    tel->count("retry.exhausted");
  }
  HBMVOLT_LOG_WARN("%s: retries exhausted: %s", op,
                   status.to_string().c_str());
}

}  // namespace retry_detail

Status retry_status(const RetryPolicy& policy, const char* op,
                    const std::function<Status()>& attempt) {
  unsigned failures = 0;
  for (;;) {
    Status status = attempt();
    if (status.is_ok()) {
      if (failures > 0) retry_detail::note_recovered(op, failures);
      return status;
    }
    if (!policy.retryable(status)) return status;
    if (++failures >= policy.max_attempts) {
      retry_detail::note_exhausted(op, status);
      return status;
    }
    retry_detail::note_retry(op, status, policy.backoff_us(failures));
  }
}

}  // namespace hbmvolt
