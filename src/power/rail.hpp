// The VCC_HBM power rail: the piece of board that couples the regulator's
// output, the load the HBM stacks present, and the INA226's sense inputs,
// plus an energy integrator for efficiency studies.
//
//             ISL68301 --(vout listener)--> PowerRail <--(probe)-- INA226
//                 ^                            |
//                 +------(load model)----------+

#pragma once

#include "common/units.hpp"
#include "power/power_model.hpp"
#include "sensors/ina226.hpp"

namespace hbmvolt::power {

class PowerRail {
 public:
  explicit PowerRail(PowerModel model);

  [[nodiscard]] const PowerModel& model() const noexcept { return model_; }

  /// Present bandwidth utilization of the HBM (0..1); set by the traffic
  /// controllers when a workload runs.
  void set_utilization(double u) noexcept;
  [[nodiscard]] double utilization() const noexcept { return utilization_; }

  /// Regulator listener: records the rail voltage.
  void on_voltage(Millivolts v) noexcept { voltage_ = v; }
  [[nodiscard]] Millivolts voltage() const noexcept { return voltage_; }

  /// Regulator load model: current drawn at a hypothetical output voltage.
  [[nodiscard]] Amps load_current(Millivolts v) const {
    return model_.current(v, utilization_);
  }

  /// INA226 probe: the true rail state right now.
  [[nodiscard]] sensors::RailSample sample() const {
    return {voltage_, load_current(voltage_)};
  }

  [[nodiscard]] Watts true_power() const {
    return model_.power(voltage_, utilization_);
  }

  /// Energy accounting: integrates P over simulated elapsed time.
  void advance(Seconds dt);
  [[nodiscard]] Joules consumed_energy() const noexcept { return energy_; }
  void reset_energy() noexcept { energy_ = Joules{0.0}; }

 private:
  PowerModel model_;
  Millivolts voltage_{1200};
  double utilization_ = 0.0;
  Joules energy_{0.0};
};

}  // namespace hbmvolt::power
