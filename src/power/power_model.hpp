// HBM rail power model.
//
// Total rail power at supply voltage v and bandwidth utilization u (0..1):
//
//   P(v, u) = P_full * (f_idle + (1 - f_idle) * u) * (v / V_nom)^2 * alpha(v)
//
//  * P_full: full-load power at nominal voltage (both stacks, 310 GB/s).
//    Calibrated from the ~7 pJ/bit HBM2 transfer energy the paper cites:
//    310 GB/s * 8 b/B * 7 pJ/b ~= 17.4 W of dynamic power, which is 2/3 of
//    the total given the paper's "idle is one third of full load", so
//    P_full ~= 26.1 W.
//  * f_idle = 1/3: idle fraction (anchor 3).  Idle power comes from clock
//    distribution, refresh and peripheral toggling, which scale with V^2
//    like the active portion -- this makes the *savings factor*
//    utilization-independent, matching Fig 2.
//  * (v/V_nom)^2: CMOS dynamic power, Eq. (1) of the paper.
//  * alpha(v): activity degradation from stuck cells (anchor 10) -- a
//    stuck bit line no longer charges/discharges, so deep undervolting
//    yields *extra* savings beyond V^2.  Supplied by the fault model;
//    identity when no fault model is attached.

#pragma once

#include <functional>

#include "common/units.hpp"

namespace hbmvolt::power {

struct PowerModelConfig {
  Millivolts v_nom{1200};
  Watts p_full_load{26.1};       // both stacks, 100% utilization, 1.2 V
  double idle_fraction = 1.0 / 3.0;
};

class PowerModel {
 public:
  /// alpha(v): multiplier in (0, 1]; pass nullptr for the identity.
  using AlphaFn = std::function<double(Millivolts)>;

  explicit PowerModel(PowerModelConfig config, AlphaFn alpha = nullptr);

  [[nodiscard]] const PowerModelConfig& config() const noexcept {
    return config_;
  }

  /// Total rail power; 0 W when v <= 0.
  [[nodiscard]] Watts power(Millivolts v, double utilization) const;

  /// Idle component only (utilization 0).
  [[nodiscard]] Watts idle_power(Millivolts v) const {
    return power(v, 0.0);
  }

  /// Rail current I = P / v; 0 A when v <= 0.
  [[nodiscard]] Amps current(Millivolts v, double utilization) const;

  /// The quantity Fig 3 plots: P / v^2, i.e. alpha * C_L * f in
  /// farads/second (before per-bandwidth normalization).
  [[nodiscard]] double alpha_clf(Millivolts v, double utilization) const;

  [[nodiscard]] double alpha(Millivolts v) const {
    return alpha_ ? alpha_(v) : 1.0;
  }

 private:
  PowerModelConfig config_;
  AlphaFn alpha_;
};

}  // namespace hbmvolt::power
