// Load-line (droop) analysis: the effective rail voltage the HBM cells
// see is the regulator setpoint minus I*R_loadline, and the current
// itself depends on that voltage -- a small fixed point.
//
// This quantifies a deployment hazard the paper's lab setup avoided by
// using a quality VRM: with a soft load line, the *effective* guardband
// at full bandwidth is narrower than the characterization (done against
// setpoints) suggests.  bench/ext_vrm_droop sweeps load-line quality.

#pragma once

#include "common/units.hpp"
#include "power/power_model.hpp"

namespace hbmvolt::power {

/// Effective cell voltage for a given setpoint, load model and load line.
/// Solves v = setpoint - I(v)*R by fixed-point iteration (converges in a
/// few steps; I is nearly constant over millivolt perturbations).
[[nodiscard]] Millivolts effective_rail_voltage(Millivolts setpoint,
                                                const PowerModel& model,
                                                double utilization,
                                                Ohms load_line);

/// The setpoint needed so that the *effective* voltage equals `target`
/// under the given load (the VRM-compensation a careful deployment
/// applies before undervolting).
[[nodiscard]] Millivolts compensated_setpoint(Millivolts target,
                                              const PowerModel& model,
                                              double utilization,
                                              Ohms load_line);

}  // namespace hbmvolt::power
