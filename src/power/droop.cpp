#include "power/droop.hpp"

#include <cmath>

namespace hbmvolt::power {

Millivolts effective_rail_voltage(Millivolts setpoint,
                                  const PowerModel& model,
                                  double utilization, Ohms load_line) {
  if (setpoint.value <= 0) return setpoint;
  double v = setpoint.volts();
  for (int iteration = 0; iteration < 16; ++iteration) {
    const double i = model.current(from_volts(v), utilization).value;
    const double next = setpoint.volts() - i * load_line.value;
    if (std::abs(next - v) < 1e-5) {
      v = next;
      break;
    }
    v = next;
  }
  return from_volts(v);
}

Millivolts compensated_setpoint(Millivolts target, const PowerModel& model,
                                double utilization, Ohms load_line) {
  // Invert by iterating: setpoint = target + I(effective)*R.
  Millivolts setpoint = target;
  for (int iteration = 0; iteration < 16; ++iteration) {
    const Millivolts effective =
        effective_rail_voltage(setpoint, model, utilization, load_line);
    const int error = target.value - effective.value;
    if (error == 0) break;
    setpoint = Millivolts{setpoint.value + error};
  }
  return setpoint;
}

}  // namespace hbmvolt::power
