#include "power/rail.hpp"

#include <algorithm>

namespace hbmvolt::power {

PowerRail::PowerRail(PowerModel model) : model_(std::move(model)) {}

void PowerRail::set_utilization(double u) noexcept {
  utilization_ = std::clamp(u, 0.0, 1.0);
}

void PowerRail::advance(Seconds dt) {
  if (dt.value <= 0.0) return;
  energy_ = energy_ + energy_from(true_power(), dt);
}

}  // namespace hbmvolt::power
