#include "power/power_model.hpp"

#include "common/status.hpp"

namespace hbmvolt::power {

PowerModel::PowerModel(PowerModelConfig config, AlphaFn alpha)
    : config_(config), alpha_(std::move(alpha)) {
  HBMVOLT_REQUIRE(config_.v_nom.value > 0, "nominal voltage must be positive");
  HBMVOLT_REQUIRE(config_.p_full_load.value > 0, "full-load power must be positive");
  HBMVOLT_REQUIRE(config_.idle_fraction >= 0.0 && config_.idle_fraction <= 1.0,
                  "idle fraction must be in [0,1]");
}

Watts PowerModel::power(Millivolts v, double utilization) const {
  if (v.value <= 0) return Watts{0.0};
  utilization = utilization < 0.0 ? 0.0 : (utilization > 1.0 ? 1.0 : utilization);
  const double vr = v.volts() / config_.v_nom.volts();
  const double demand =
      config_.idle_fraction + (1.0 - config_.idle_fraction) * utilization;
  return Watts{config_.p_full_load.value * demand * vr * vr * alpha(v)};
}

Amps PowerModel::current(Millivolts v, double utilization) const {
  if (v.value <= 0) return Amps{0.0};
  return current_from(power(v, utilization), v);
}

double PowerModel::alpha_clf(Millivolts v, double utilization) const {
  if (v.value <= 0) return 0.0;
  return power(v, utilization).value / (v.volts() * v.volts());
}

}  // namespace hbmvolt::power
