#include "serve/plane.hpp"

#include <algorithm>
#include <utility>

#include "chaos/chaos.hpp"
#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace hbmvolt::serve {
namespace {

// Stream-split salts for the placement hashes (arbitrary, fixed).
constexpr std::uint64_t kTraceSalt = 0x7E4A47;
constexpr std::uint64_t kSlotSalt = 0x51A7;
constexpr std::uint64_t kChunkSalt = 0xBA5E;
constexpr std::uint64_t kFingerprintSalt = 0x7E57A11;

workload::AccessTrace make_demand(const TenantSpec& spec, std::uint64_t seed) {
  switch (spec.mix) {
    case WorkloadMix::kZipfian:
      return workload::make_zipfian(spec.footprint_beats, spec.ops,
                                    spec.zipf_theta, spec.write_fraction, seed);
    case WorkloadMix::kStreaming: {
      const auto passes = static_cast<unsigned>(
          std::max<std::uint64_t>(1, spec.ops / spec.footprint_beats));
      return workload::make_streaming(spec.footprint_beats, passes);
    }
    case WorkloadMix::kPointerChase:
      return workload::make_pointer_chase(spec.footprint_beats, spec.ops,
                                          seed);
    case WorkloadMix::kUniform:
      break;
  }
  return workload::make_uniform_random(spec.footprint_beats, spec.ops,
                                       spec.write_fraction, seed);
}

}  // namespace

RequestPlane::RequestPlane(PlaneConfig config) : config_(std::move(config)) {
  HBMVOLT_REQUIRE(!config_.tenants.empty(), "request plane needs tenants");
  HBMVOLT_REQUIRE(config_.retry.max_attempts > 0,
                  "request plane retry policy needs at least one attempt");
  tenants_.resize(config_.tenants.size());
  for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
    TenantSpec& spec = config_.tenants[t];
    HBMVOLT_REQUIRE(spec.footprint_beats > 0 && spec.ops > 0,
                    "tenant needs a footprint and demand");
    HBMVOLT_REQUIRE(spec.quota_per_epoch > 0, "tenant needs a quota");
    // Generators may round the demand (whole streaming passes, the
    // pointer-chase write pass); the spec keeps the realized size.
    tenants_[t].trace =
        make_demand(spec, stream_seed(config_.seed, kTraceSalt, t));
    spec.ops = tenants_[t].trace.size();
  }
}

void RequestPlane::bind(const runtime::ServingFleet& fleet) {
  const std::size_t slots = fleet.channels();
  HBMVOLT_REQUIRE(slots > 0, "request plane needs serving slots");
  capacity_ = fleet.channel(0).capacity();
  for (std::size_t i = 1; i < slots; ++i) {
    capacity_ = std::min(capacity_, fleet.channel(i).capacity());
  }
  HBMVOLT_REQUIRE(capacity_ > 0, "request plane needs slot capacity");
  chunk_ = std::clamp<std::uint64_t>(config_.chunk_beats, 1, capacity_);
  slots_.assign(slots, SlotState{});
  for (SlotState& slot : slots_) {
    slot.retry_tokens.assign(tenants_.size(), 0);
    slot.scratch.assign(tenants_.size(), TenantStats{});
    slot.latency.assign(tenants_.size(), telemetry::HdrHistogram{});
  }
  bound_ = true;
}

unsigned RequestPlane::compute_brownout(
    const runtime::ServingFleet& fleet) const {
  bool any_lost = false;
  std::uint64_t parked = 0;
  for (std::size_t i = 0; i < fleet.channels(); ++i) {
    const runtime::ReliableChannel& ch = fleet.channel(i);
    any_lost = any_lost || ch.device_lost();
    parked += ch.parked_count();
  }
  const bool striped = fleet.scheme() == mitigate::MitigationKind::kStripe;
  bool redundancy_gone = false;
  if (striped) {
    // A doubly-degraded group (or a loss with the spare pool dry) cannot
    // reconstruct: the fleet is down to journal serving for those beats.
    const unsigned width = std::max(1u, fleet.config().stripe_width);
    for (std::size_t g = 0; g < fleet.groups(); ++g) {
      unsigned lost = fleet.parity_channel(g).device_lost() ? 1u : 0u;
      const std::size_t begin = g * width;
      const std::size_t end =
          std::min<std::size_t>(begin + width, fleet.channels());
      for (std::size_t s = begin; s < end; ++s) {
        if (fleet.channel(s).device_lost()) ++lost;
      }
      if (lost >= 2) redundancy_gone = true;
    }
    if (any_lost && fleet.spares_left() == 0) redundancy_gone = true;
  } else {
    // No cross-PC redundancy: a lost device is already journal-only.
    redundancy_gone = any_lost;
  }
  if (redundancy_gone) return 2;
  if (any_lost || parked > 0) return 1;
  return 0;
}

void RequestPlane::begin_epoch(const runtime::ServingFleet& fleet,
                               std::uint64_t epoch) {
  if (!bound_) bind(fleet);
  brownout_ = compute_brownout(fleet);
  telemetry::Telemetry* tel = telemetry::Telemetry::active();

  // 1) Queue aging: anything admitted more than queue_deadline_epochs ago
  // has blown its queueing deadline -- shed it rather than serve a result
  // nobody is waiting for.
  for (SlotState& slot : slots_) {
    std::deque<Queued> keep;
    for (Queued& q : slot.queue) {
      const TenantSpec& spec = config_.tenants[q.req.tenant];
      if (q.born + spec.queue_deadline_epochs < epoch) {
        tenants_[q.req.tenant].stats.shed_queue += q.req.count;
        epoch_shed_ += q.req.count;
        if (tel != nullptr) tel->count("serve.shed.queue", q.req.count);
      } else {
        keep.push_back(std::move(q));
      }
    }
    slot.queue.swap(keep);
  }

  // 2) Admission, tenant index order: refill the token bucket, poll the
  // chaos surge, and admit up to the bucket.  Shed demand (admission,
  // brownout) consumes trace records permanently -- the plane never
  // queues more than the bucket allows.
  struct Candidate {
    std::size_t slot = 0;
    Queued q;
  };
  std::vector<Candidate> cands;
  const std::uint64_t chunks_per_slot = std::max<std::uint64_t>(
      1, capacity_ / chunk_);
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    TenantState& ts = tenants_[t];
    const TenantSpec& spec = config_.tenants[t];
    ts.tokens = std::min(spec.burst_tokens, ts.tokens + spec.quota_per_epoch);
    if (ts.cursor >= ts.trace.size()) continue;
    std::uint64_t mult = 1;
    if (config_.chaos != nullptr) {
      mult = config_.chaos->surge_tick(t, epoch);
      if (mult > 1) {
        ++ts.stats.surges;
        if (tel != nullptr) tel->count("serve.surge");
      }
    }
    const std::uint64_t offer = std::min<std::uint64_t>(
        spec.quota_per_epoch * mult, ts.trace.size() - ts.cursor);
    ts.stats.demand += offer;
    if (brownout_ >= 2 && spec.qos == QosClass::kBestEffort) {
      ts.stats.shed_brownout += offer;
      epoch_shed_ += offer;
      if (tel != nullptr) tel->count("serve.shed.brownout", offer);
      ts.cursor += offer;
      continue;
    }
    const std::uint64_t admit = std::min(offer, ts.tokens);
    ts.tokens -= admit;
    ts.stats.admitted += admit;
    epoch_admitted_ += admit;
    if (admit < offer) {
      ts.stats.shed_admission += offer - admit;
      epoch_shed_ += offer - admit;
      if (tel != nullptr) tel->count("serve.shed.admission", offer - admit);
    }
    if (tel != nullptr && admit > 0) tel->count("serve.admitted", admit);

    // Place the admitted window: coalesce consecutive same-direction
    // beats inside one chunk, then hash (tenant, chunk) to a slot and a
    // chunk-aligned base so a tenant's chunk always lands on one home.
    const std::uint64_t end = ts.cursor + admit;
    std::uint64_t i = ts.cursor;
    while (i < end) {
      const workload::TraceRecord& first = ts.trace[i];
      const std::uint64_t chunk = first.beat / chunk_;
      std::uint64_t run = 1;
      while (i + run < end) {
        const workload::TraceRecord& next = ts.trace[i + run];
        if (next.write != first.write || next.beat != first.beat + run ||
            next.beat / chunk_ != chunk) {
          break;
        }
        ++run;
      }
      const std::uint64_t key = (static_cast<std::uint64_t>(t) << 32) | chunk;
      runtime::PlacedRequest req;
      req.tenant = static_cast<std::uint32_t>(t);
      req.write = first.write;
      req.stale_ok = spec.qos == QosClass::kBestEffort && brownout_ >= 1;
      req.hedge = spec.qos == QosClass::kGuaranteed;
      req.logical = (stream_seed(config_.seed, kChunkSalt, key) %
                     chunks_per_slot) *
                        chunk_ +
                    first.beat % chunk_;
      req.count = run;
      req.deadline_attempts = std::min<unsigned>(spec.deadline_attempts,
                                                 config_.retry.max_attempts);
      Candidate cand;
      cand.slot = static_cast<std::size_t>(
          stream_seed(config_.seed, kSlotSalt, key) % slots_.size());
      cand.q = Queued{req, epoch};
      cands.push_back(std::move(cand));
      i += run;
    }
    ts.cursor += offer;  // the shed tail is consumed, not deferred
  }

  // 3) Hot-shard detection over this epoch's placements plus the carried
  // backlog.  A slot far above the mean is a skew artifact (zipfian hot
  // chunks piling onto one home); best-effort traffic backs off it.
  std::vector<std::uint64_t> load(slots_.size(), 0);
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    for (const Queued& q : slots_[s].queue) load[s] += q.req.count;
  }
  for (const Candidate& c : cands) load[c.slot] += c.q.req.count;
  std::uint64_t total = 0;
  for (std::uint64_t v : load) total += v;
  const double mean =
      static_cast<double>(total) / static_cast<double>(slots_.size());
  std::vector<char> hot(slots_.size(), 0);
  if (mean > 0.0) {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      hot[s] = static_cast<double>(load[s]) > config_.hot_shard_factor * mean &&
               load[s] > chunk_;
    }
  }

  // 4) Enqueue, placement order, under queue-depth backpressure.
  for (Candidate& c : cands) {
    TenantState& ts = tenants_[c.q.req.tenant];
    const TenantSpec& spec = config_.tenants[c.q.req.tenant];
    SlotState& slot = slots_[c.slot];
    if (hot[c.slot] != 0 && spec.qos == QosClass::kBestEffort) {
      ts.stats.shed_hot_shard += c.q.req.count;
      epoch_shed_ += c.q.req.count;
      if (tel != nullptr) tel->count("serve.shed.hot_shard", c.q.req.count);
      continue;
    }
    if (slot.queue.size() >= config_.max_queue_per_slot) {
      ts.stats.shed_queue += c.q.req.count;
      epoch_shed_ += c.q.req.count;
      if (tel != nullptr) tel->count("serve.shed.queue", c.q.req.count);
      continue;
    }
    slot.queue.push_back(std::move(c.q));
  }

  // 5) Per-(slot, tenant) retry slices for this epoch, sized from the
  // beats actually queued there: a storm can burn at most this fraction
  // in extra escalation rounds before workers stop retrying.
  for (SlotState& slot : slots_) {
    std::fill(slot.retry_tokens.begin(), slot.retry_tokens.end(), 0);
    for (const Queued& q : slot.queue) {
      slot.retry_tokens[q.req.tenant] += q.req.count;
    }
    for (std::uint64_t& tokens : slot.retry_tokens) {
      if (tokens == 0) continue;
      const auto slice = static_cast<std::uint64_t>(
          static_cast<double>(tokens) * config_.retry_budget_fraction);
      tokens = std::max<std::uint64_t>(2, slice + 1);
    }
  }
}

const runtime::PlacedRequest* RequestPlane::front(std::size_t slot) {
  SlotState& state = slots_[slot];
  return state.queue.empty() ? nullptr : &state.queue.front().req;
}

void RequestPlane::complete(std::size_t slot,
                            const runtime::PlacedRequest& request,
                            runtime::ServeOutcome outcome, unsigned attempts,
                            std::uint64_t model_ns) {
  SlotState& state = slots_[slot];
  HBMVOLT_REQUIRE(!state.queue.empty(), "complete() without a queued request");
  state.queue.pop_front();
  TenantStats& s = state.scratch[request.tenant];
  s.retries += attempts;
  if (attempts > request.deadline_attempts) ++s.deadline_hits;
  switch (outcome) {
    case runtime::ServeOutcome::kServed:
      (request.write ? s.served_writes : s.served_reads) += request.count;
      break;
    case runtime::ServeOutcome::kHedged:
      s.hedged += request.count;
      break;
    case runtime::ServeOutcome::kStale:
      s.stale_served += request.count;
      break;
    case runtime::ServeOutcome::kShed:
      s.shed_deadline += request.count;
      return;  // a shed request has no service latency
  }
  state.latency[request.tenant].record(model_ns);
}

bool RequestPlane::spend_retry(std::size_t slot, std::uint32_t tenant) {
  std::uint64_t& tokens = slots_[slot].retry_tokens[tenant];
  if (tokens == 0) return false;
  --tokens;
  return true;
}

void RequestPlane::end_epoch(telemetry::EpochSample* sample) {
  telemetry::Telemetry* tel = telemetry::Telemetry::active();
  telemetry::HdrFamily* family = nullptr;
  if (tel != nullptr) {
    family = &tel->metrics().hdr_family("serve.tenant_latency", "tenant",
                                        tenants_.size());
  }
  std::uint64_t admitted = epoch_admitted_;
  std::uint64_t shed = epoch_shed_;
  // Fold slot scratch in slot order -- the only place worker-side counts
  // meet the per-tenant totals, so the fold order is fixed regardless of
  // which thread served which slot.
  for (SlotState& slot : slots_) {
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      TenantStats& delta = slot.scratch[t];
      shed += delta.shed_deadline;
      if (tel != nullptr) {
        if (delta.hedged > 0) tel->count("serve.hedged", delta.hedged);
        if (delta.stale_served > 0) {
          tel->count("serve.stale", delta.stale_served);
        }
        if (delta.shed_deadline > 0) {
          tel->count("serve.shed.deadline", delta.shed_deadline);
        }
      }
      TenantStats& total = tenants_[t].stats;
      total.served_reads += delta.served_reads;
      total.served_writes += delta.served_writes;
      total.hedged += delta.hedged;
      total.stale_served += delta.stale_served;
      total.shed_deadline += delta.shed_deadline;
      total.retries += delta.retries;
      total.deadline_hits += delta.deadline_hits;
      delta = TenantStats{};
      telemetry::HdrHistogram& local = slot.latency[t];
      if (local.count() > 0) {
        tenants_[t].latency.merge(local);
        if (family != nullptr) family->merge_into(t, local);
        local.clear();
      }
    }
  }
  if (sample != nullptr) {
    sample->admitted = admitted;
    sample->shed = shed;
  }
  epoch_admitted_ = 0;
  epoch_shed_ = 0;
}

bool RequestPlane::exhausted() const {
  for (const TenantState& ts : tenants_) {
    if (ts.cursor < ts.trace.size()) return false;
  }
  for (const SlotState& slot : slots_) {
    if (!slot.queue.empty()) return false;
  }
  return true;
}

std::uint64_t RequestPlane::epochs_remaining_bound() const {
  // Every epoch consumes at least min(quota, remaining) records per
  // tenant (admitted or shed), and queued leftovers age out after
  // queue_deadline_epochs -- so the sum below is a true upper bound.
  std::uint64_t bound = 64;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantState& ts = tenants_[t];
    const TenantSpec& spec = config_.tenants[t];
    const std::uint64_t left =
        ts.trace.size() - std::min<std::uint64_t>(ts.cursor, ts.trace.size());
    const std::uint64_t quota = std::max<std::uint64_t>(1, spec.quota_per_epoch);
    bound += (left + quota - 1) / quota + spec.queue_deadline_epochs + 2;
  }
  return bound;
}

bool RequestPlane::slo_met(std::size_t tenant) const {
  return tenants_[tenant].latency.quantiles().p99 <=
         config_.tenants[tenant].slo_model_ns;
}

void RequestPlane::fill_health(runtime::HealthRegistry* health) const {
  if (health == nullptr) return;
  std::vector<runtime::TenantHealth> rows;
  rows.reserve(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantSpec& spec = config_.tenants[t];
    const TenantStats& s = tenants_[t].stats;
    const telemetry::HdrHistogram::Quantiles q =
        tenants_[t].latency.quantiles();
    runtime::TenantHealth row;
    row.name = spec.name;
    row.qos = to_string(spec.qos);
    row.mix = to_string(spec.mix);
    row.demand = s.demand;
    row.admitted = s.admitted;
    row.served = s.served_reads + s.served_writes;
    row.hedged = s.hedged;
    row.stale = s.stale_served;
    row.shed = s.shed_total();
    row.shed_deadline = s.shed_deadline;
    row.retries = s.retries;
    row.surges = s.surges;
    row.p50_model_ns = q.p50;
    row.p99_model_ns = q.p99;
    row.slo_model_ns = spec.slo_model_ns;
    row.slo_ok = q.p99 <= spec.slo_model_ns;
    rows.push_back(std::move(row));
  }
  health->set_tenants(std::move(rows));
}

std::uint64_t RequestPlane::fingerprint() const {
  std::uint64_t fp = mix_seed(config_.seed, kFingerprintSalt);
  for (const TenantState& ts : tenants_) {
    const TenantStats& s = ts.stats;
    const std::uint64_t fields[] = {
        s.demand,         s.admitted,       s.served_reads, s.served_writes,
        s.hedged,         s.stale_served,   s.shed_admission,
        s.shed_brownout,  s.shed_hot_shard, s.shed_queue,   s.shed_deadline,
        s.retries,        s.deadline_hits,  s.surges,       ts.latency.count(),
        ts.latency.sum(), ts.latency.max()};
    for (std::uint64_t v : fields) fp = mix_seed(fp, v);
  }
  return fp;
}

std::string RequestPlane::to_json() const {
  using telemetry::json_quoted;
  std::string out = "{\"tenants\":[\n";
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantSpec& spec = config_.tenants[t];
    const TenantStats& s = tenants_[t].stats;
    const telemetry::HdrHistogram::Quantiles q =
        tenants_[t].latency.quantiles();
    if (t > 0) out += ",\n";
    out += "{\"name\":" + json_quoted(spec.name) +
           ",\"qos\":" + json_quoted(to_string(spec.qos)) +
           ",\"mix\":" + json_quoted(to_string(spec.mix)) +
           ",\"demand\":" + std::to_string(s.demand) +
           ",\"admitted\":" + std::to_string(s.admitted) +
           ",\"served_reads\":" + std::to_string(s.served_reads) +
           ",\"served_writes\":" + std::to_string(s.served_writes) +
           ",\"hedged\":" + std::to_string(s.hedged) +
           ",\"stale_served\":" + std::to_string(s.stale_served) +
           ",\"shed_admission\":" + std::to_string(s.shed_admission) +
           ",\"shed_brownout\":" + std::to_string(s.shed_brownout) +
           ",\"shed_hot_shard\":" + std::to_string(s.shed_hot_shard) +
           ",\"shed_queue\":" + std::to_string(s.shed_queue) +
           ",\"shed_deadline\":" + std::to_string(s.shed_deadline) +
           ",\"retries\":" + std::to_string(s.retries) +
           ",\"deadline_hits\":" + std::to_string(s.deadline_hits) +
           ",\"surges\":" + std::to_string(s.surges) +
           ",\"p50_model_ns\":" + std::to_string(q.p50) +
           ",\"p99_model_ns\":" + std::to_string(q.p99) +
           ",\"p999_model_ns\":" + std::to_string(q.p999) +
           ",\"slo_model_ns\":" + std::to_string(spec.slo_model_ns) +
           ",\"slo_ok\":" + (slo_met(t) ? "true" : "false") + "}";
  }
  out += "\n],\"fingerprint\":" + std::to_string(fingerprint()) + "}\n";
  return out;
}

}  // namespace hbmvolt::serve
