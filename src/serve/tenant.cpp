#include "serve/tenant.hpp"

namespace hbmvolt::serve {

const char* to_string(QosClass qos) noexcept {
  switch (qos) {
    case QosClass::kGuaranteed: return "guaranteed";
    case QosClass::kBestEffort: return "best_effort";
  }
  return "unknown";
}

const char* to_string(WorkloadMix mix) noexcept {
  switch (mix) {
    case WorkloadMix::kZipfian: return "zipfian";
    case WorkloadMix::kStreaming: return "streaming";
    case WorkloadMix::kPointerChase: return "pointer_chase";
    case WorkloadMix::kUniform: return "uniform";
  }
  return "unknown";
}

Result<QosClass> parse_qos(std::string_view text) {
  if (text == "guaranteed") return QosClass::kGuaranteed;
  if (text == "best_effort") return QosClass::kBestEffort;
  return invalid_argument("unknown QoS class '" + std::string(text) +
                          "' (accepted: guaranteed, best_effort)");
}

Result<WorkloadMix> parse_mix(std::string_view text) {
  if (text == "zipfian") return WorkloadMix::kZipfian;
  if (text == "streaming") return WorkloadMix::kStreaming;
  if (text == "pointer_chase") return WorkloadMix::kPointerChase;
  if (text == "uniform") return WorkloadMix::kUniform;
  return invalid_argument(
      "unknown workload mix '" + std::string(text) +
      "' (accepted: zipfian, streaming, pointer_chase, uniform)");
}

std::vector<TenantSpec> make_tenant_set(unsigned count,
                                        const std::vector<WorkloadMix>& mixes,
                                        std::uint64_t ops,
                                        std::uint64_t footprint_beats,
                                        std::uint64_t quota_per_epoch) {
  HBMVOLT_REQUIRE(count > 0 && !mixes.empty(), "tenant set needs members");
  std::vector<TenantSpec> tenants;
  tenants.reserve(count);
  for (unsigned t = 0; t < count; ++t) {
    TenantSpec spec;
    spec.name = "t" + std::to_string(t);
    // Even slots guaranteed, odd best-effort: every mix appears in both
    // classes once count covers two cycles.
    spec.qos = (t % 2 == 0) ? QosClass::kGuaranteed : QosClass::kBestEffort;
    spec.mix = mixes[t % mixes.size()];
    spec.ops = ops;
    spec.footprint_beats = footprint_beats;
    spec.quota_per_epoch = quota_per_epoch;
    spec.burst_tokens = quota_per_epoch * 2;
    tenants.push_back(std::move(spec));
  }
  return tenants;
}

}  // namespace hbmvolt::serve
