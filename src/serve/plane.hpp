// RequestPlane: the multi-tenant request plane over the ServingFleet.
//
// The plane sits between a TenantSet (counter-seeded synthetic streams,
// serve/tenant.hpp) and the fleet's serving slots, implementing the
// runtime::RequestSource seam.  Its job is QoS under scarcity:
//
//  * Admission control.  Each tenant owns a token bucket refilled at
//    every epoch barrier (quota_per_epoch, capped at burst_tokens); a
//    chaos tenant-surge multiplies the epoch's *offer*, and demand beyond
//    the bucket is shed deterministically (shed.admission), never queued
//    unboundedly.
//  * Placement.  Tenant virtual beats map to (slot, logical) through a
//    pure hash of (seed, tenant, chunk), with consecutive same-direction
//    beats coalesced per chunk so streaming tenants keep the fleet's
//    range fast path.  Queues are depth-bounded (shed.queue), aged
//    (queue_deadline_epochs), and hot slots throttle best-effort traffic
//    (shed.hot_shard).
//  * Deadlines and retry budgets.  Requests carry an escalation-round
//    deadline (clamped to the shared RetryPolicy's attempt budget); each
//    slot holds a per-tenant retry slice sized from the beats placed on
//    it, so a fault storm cannot amplify retries fleet-wide.  Guaranteed
//    tenants hedge blown deadlines to the journal copy; best-effort
//    requests are shed (shed.deadline).
//  * Brownout ladder, coupled to the fleet's degradation ladder.  Level 1
//    (any device lost, parked beats, or a rebuild in flight): best-effort
//    reads may be served stale from the journal.  Level 2 (redundancy
//    exhausted: an unstriped device loss, a doubly-degraded stripe group,
//    or a loss with the spare pool dry): best-effort tenants are shed at
//    admission (shed.brownout) while guaranteed tenants keep their
//    latency SLO through the journal hedge.
//
// Determinism: every decision above is a pure function of (seed, tenant,
// epoch) plus barrier-time fleet state.  All admission runs serially at
// the barrier; workers only pop their own slot's queue.  Fleet and
// per-tenant fingerprints are therefore byte-identical at any thread
// count, chaos on or off (tests/serve_test.cpp).

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "common/status.hpp"
#include "runtime/fleet.hpp"
#include "serve/tenant.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "workload/trace.hpp"

namespace hbmvolt::chaos {
class ChaosInjector;
}  // namespace hbmvolt::chaos

namespace hbmvolt::serve {

struct PlaneConfig {
  std::vector<TenantSpec> tenants;
  std::uint64_t seed = 1;
  /// Placement granularity, in beats (clamped to the slot capacity).
  /// Consecutive tenant beats inside one chunk land on one slot, so this
  /// is also the maximal coalesced run a streaming tenant can issue.
  std::uint64_t chunk_beats = 64;
  /// Queue-depth backpressure: requests beyond this per-slot bound are
  /// shed at placement.
  std::uint64_t max_queue_per_slot = 64;
  /// A slot whose placed + backlogged beats exceed this multiple of the
  /// per-slot mean is "hot": best-effort placements onto it are shed.
  double hot_shard_factor = 4.0;
  /// Shared bounded-retry policy (common/retry.hpp): request deadlines
  /// are clamped to its attempt budget.
  RetryPolicy retry;
  /// Per-epoch retry slice per (slot, tenant), as a fraction of the beats
  /// placed there (minimum 2 rounds) -- the anti-amplification bound.
  double retry_budget_fraction = 0.10;
  /// Optional chaos injector polled once per (tenant, epoch) for
  /// tenant-surge storms (ChaosInjector::surge_tick).
  chaos::ChaosInjector* chaos = nullptr;
};

class RequestPlane : public runtime::RequestSource {
 public:
  explicit RequestPlane(PlaneConfig config);

  // ---- runtime::RequestSource (see the seam contract in fleet.hpp) ----
  void begin_epoch(const runtime::ServingFleet& fleet,
                   std::uint64_t epoch) override;
  const runtime::PlacedRequest* front(std::size_t slot) override;
  void complete(std::size_t slot, const runtime::PlacedRequest& request,
                runtime::ServeOutcome outcome, unsigned attempts,
                std::uint64_t model_ns) override;
  bool spend_retry(std::size_t slot, std::uint32_t tenant) override;
  void end_epoch(telemetry::EpochSample* sample) override;
  [[nodiscard]] bool exhausted() const override;
  [[nodiscard]] std::uint64_t epochs_remaining_bound() const override;
  void fill_health(runtime::HealthRegistry* health) const override;
  [[nodiscard]] std::uint64_t fingerprint() const override;

  // ---- Introspection (tests, soak artifacts) ----
  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return config_.tenants.size();
  }
  [[nodiscard]] const TenantSpec& spec(std::size_t tenant) const {
    return config_.tenants[tenant];
  }
  /// Cumulative per-tenant accounting as of the last barrier.
  [[nodiscard]] const TenantStats& stats(std::size_t tenant) const {
    return tenants_[tenant].stats;
  }
  /// Full model-latency distribution (model ns) as of the last barrier.
  [[nodiscard]] const telemetry::HdrHistogram& latency(
      std::size_t tenant) const {
    return tenants_[tenant].latency;
  }
  /// p99 of the tenant's model-latency distribution <= its SLO.
  [[nodiscard]] bool slo_met(std::size_t tenant) const;
  /// Brownout level applied at the last begin_epoch (0 / 1 / 2).
  [[nodiscard]] unsigned brownout_level() const noexcept { return brownout_; }
  /// tenants.json: one object per tenant with stats and quantiles.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Queued {
    runtime::PlacedRequest req;
    std::uint64_t born = 0;  // admission epoch, for queue aging
  };
  /// Per serving slot: the request queue plus slot-local scratch, folded
  /// serially at end_epoch.  Workers touch only their own slot.
  struct SlotState {
    std::deque<Queued> queue;
    std::vector<std::uint64_t> retry_tokens;          // per tenant
    std::vector<TenantStats> scratch;                 // per tenant deltas
    std::vector<telemetry::HdrHistogram> latency;     // per tenant
  };
  struct TenantState {
    workload::AccessTrace trace;  // tenant-virtual demand stream
    std::uint64_t cursor = 0;
    std::uint64_t tokens = 0;
    TenantStats stats;
    telemetry::HdrHistogram latency;
  };

  void bind(const runtime::ServingFleet& fleet);
  [[nodiscard]] unsigned compute_brownout(
      const runtime::ServingFleet& fleet) const;

  PlaneConfig config_;
  std::vector<TenantState> tenants_;
  std::vector<SlotState> slots_;
  std::uint64_t capacity_ = 0;  // min slot capacity, placement modulus
  std::uint64_t chunk_ = 1;     // bound chunk size
  bool bound_ = false;
  unsigned brownout_ = 0;
  // Serial-side per-epoch deltas for the barrier sample.
  std::uint64_t epoch_admitted_ = 0;
  std::uint64_t epoch_shed_ = 0;
};

}  // namespace hbmvolt::serve
