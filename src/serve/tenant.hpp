// Tenant model for the multi-tenant request plane (serve/plane.hpp).
//
// A tenant is one counter-seeded op stream with a QoS class, an admission
// quota, and a latency SLO.  Everything here is declarative: the specs
// below fully determine the tenant's demand (via the workload generators
// in workload/trace.hpp) and its admission treatment, so a fleet run is a
// pure function of (seed, tenant set, fleet config) -- the repo's usual
// reproducibility contract, extended to the request plane.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace hbmvolt::serve {

/// Admission treatment under pressure.  Guaranteed tenants keep their
/// latency SLO through brownouts (slow device paths hedge to the journal
/// copy); best-effort tenants are degraded first -- served stale, then
/// shed -- whenever the fleet loses redundancy.
enum class QosClass : unsigned {
  kGuaranteed = 0,
  kBestEffort = 1,
};

/// Synthetic demand shape, mapped onto workload/trace.hpp generators.
enum class WorkloadMix : unsigned {
  kZipfian = 0,       // make_zipfian: YCSB-style skewed point accesses
  kStreaming = 1,     // make_streaming: sequential sweeps (range-friendly)
  kPointerChase = 2,  // make_pointer_chase: dependent random reads
  kUniform = 3,       // make_uniform_random
};

[[nodiscard]] const char* to_string(QosClass qos) noexcept;
[[nodiscard]] const char* to_string(WorkloadMix mix) noexcept;
/// Parse "guaranteed" / "best_effort" (case-sensitive, exact).
[[nodiscard]] Result<QosClass> parse_qos(std::string_view text);
/// Parse "zipfian" / "streaming" / "pointer_chase" / "uniform".
[[nodiscard]] Result<WorkloadMix> parse_mix(std::string_view text);

struct TenantSpec {
  std::string name;
  QosClass qos = QosClass::kBestEffort;
  WorkloadMix mix = WorkloadMix::kUniform;
  /// Total demand, in beats (streaming rounds up to whole passes).
  std::uint64_t ops = 1 << 12;
  /// Virtual address-space size, in beats.
  std::uint64_t footprint_beats = 256;
  double write_fraction = 0.25;
  /// Zipfian skew exponent (kZipfian only; 0.99 is the YCSB classic).
  double zipf_theta = 0.99;
  /// Token-bucket refill per epoch barrier, in beats.  This is also the
  /// tenant's nominal offered load per epoch; a chaos tenant-surge
  /// multiplies the offer, not the refill.
  std::uint64_t quota_per_epoch = 256;
  /// Token-bucket capacity (unused quota accumulates up to this).
  std::uint64_t burst_tokens = 512;
  /// Queued requests older than this many epochs are shed at admission.
  std::uint64_t queue_deadline_epochs = 4;
  /// Escalation rounds a request may absorb before its deadline is
  /// blown (clamped to the plane's RetryPolicy::max_attempts).
  unsigned deadline_attempts = 4;
  /// Per-request latency SLO in model nanoseconds (see the deterministic
  /// service-time model in runtime/fleet.hpp).  Checked against the
  /// tenant's p99; surfaced in health rows and serve_test.
  std::uint64_t slo_model_ns = 200'000;
};

/// Cumulative per-tenant accounting, folded at epoch barriers in slot
/// order (deterministic at any thread count).  All units are beats except
/// `deadline_hits`, `retries`, and `surges`, which count events.
struct TenantStats {
  std::uint64_t demand = 0;    // beats drawn from the tenant's trace
  std::uint64_t admitted = 0;  // beats past the token bucket
  std::uint64_t served_reads = 0;
  std::uint64_t served_writes = 0;
  std::uint64_t hedged = 0;        // beats answered via the journal hedge
  std::uint64_t stale_served = 0;  // brownout: journal copy, best-effort
  std::uint64_t shed_admission = 0;  // token bucket dry
  std::uint64_t shed_brownout = 0;   // brownout level 2: refused outright
  std::uint64_t shed_hot_shard = 0;  // hot-slot throttling
  std::uint64_t shed_queue = 0;      // queue depth / queue aging
  std::uint64_t shed_deadline = 0;   // dropped mid-serve, deadline blown
  std::uint64_t retries = 0;         // escalation rounds spent
  std::uint64_t deadline_hits = 0;   // requests whose deadline blew
  std::uint64_t surges = 0;          // chaos tenant-surge epochs

  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_admission + shed_brownout + shed_hot_shard + shed_queue +
           shed_deadline;
  }
};

/// Convenience tenant-set builder for soaks and tests: `count` tenants
/// named "t<i>", alternating guaranteed/best-effort, cycling through
/// `mixes`, each with `ops` beats of demand over `footprint_beats`.
[[nodiscard]] std::vector<TenantSpec> make_tenant_set(
    unsigned count, const std::vector<WorkloadMix>& mixes, std::uint64_t ops,
    std::uint64_t footprint_beats, std::uint64_t quota_per_epoch);

}  // namespace hbmvolt::serve
